#include "atpg/justify.h"

#include "atpg/val5.h"
#include "sim/levelizer.h"
#include "sim/logic3.h"

namespace retest::atpg {
namespace {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;
using sim::V3;

/// Shared search budget.
struct Budget {
  long backtracks = 0;
  long evaluations = 0;
  const JustifyOptions* options;
  bool Exhausted() const {
    return backtracks > options->max_backtracks ||
           evaluations > options->max_evaluations ||
           (options->stop != nullptr &&
            options->stop->load(std::memory_order_relaxed));
  }
};

/// Enumerates (input vector, predecessor state cube) pairs whose
/// next-state function covers the target cube in BOTH the good and the
/// faulty machine, via PODEM over one composite combinational frame
/// with PIs and pseudo-PIs assignable.
class FrameSolver {
 public:
  FrameSolver(const netlist::Circuit& circuit, const sim::Levelization& levels,
              const std::vector<char>& pi_reachable,
              const std::vector<V3>& target,
              const std::optional<fault::Fault>& fault, Budget& budget)
      : circuit_(circuit),
        levels_(levels),
        pi_reachable_(pi_reachable),
        target_(target),
        fault_(fault),
        budget_(budget),
        values_(static_cast<size_t>(circuit.size()), V5::X()),
        pi_(static_cast<size_t>(circuit.num_inputs()), V3::kX),
        ppi_(static_cast<size_t>(circuit.num_dffs()), V3::kX) {}

  /// Finds the next satisfying assignment; returns false when the
  /// space (or budget) is exhausted.  After a `true` return, read the
  /// solution via inputs()/predecessor() and call Next() again for an
  /// alternative.
  bool Next() {
    if (done_) return false;
    if (yielded_) {
      // Resume: treat the previous solution as a dead end.
      if (!Backtrack()) {
        done_ = true;
        return false;
      }
    }
    while (true) {
      if (budget_.Exhausted()) {
        done_ = true;
        return false;
      }
      Evaluate();
      const int verdict = CheckTargets();
      if (verdict == kSatisfied) {
        yielded_ = true;
        return true;
      }
      std::optional<Decision> decision;
      if (verdict >= 0) {
        decision = Backtrace(verdict);
      }
      if (decision) {
        Apply(*decision);
        stack_.push_back(*decision);
        continue;
      }
      ++budget_.backtracks;
      if (!Backtrack()) {
        done_ = true;
        return false;
      }
    }
  }

  const std::vector<V3>& inputs() const { return pi_; }
  const std::vector<V3>& predecessor() const { return ppi_; }

 private:
  static constexpr int kSatisfied = -1;
  static constexpr int kConflict = -2;

  struct Decision {
    int pi = -1;   ///< Index into pi_, or -1.
    int ppi = -1;  ///< Index into ppi_, or -1.
    V3 value = V3::kX;
    bool flipped = false;
  };

  bool HasFaultAt(NodeId id, int pin) const {
    return fault_ && fault_->site.node == id && fault_->site.pin == pin;
  }
  V3 Forced() const { return fault_->stuck_at_1 ? V3::k1 : V3::k0; }

  void Evaluate() {
    const auto& pis = circuit_.inputs();
    for (size_t i = 0; i < pis.size(); ++i) {
      V5 v = Both(pi_[i]);
      if (HasFaultAt(pis[i], -1)) v.faulty = Forced();
      values_[static_cast<size_t>(pis[i])] = v;
    }
    const auto& dffs = circuit_.dffs();
    for (size_t i = 0; i < dffs.size(); ++i) {
      V5 v = Both(ppi_[i]);
      if (HasFaultAt(dffs[i], -1)) v.faulty = Forced();
      values_[static_cast<size_t>(dffs[i])] = v;
    }
    for (NodeId id : levels_.order) {
      const Node& node = circuit_.node(id);
      if (node.kind == NodeKind::kInput || node.kind == NodeKind::kDff) {
        continue;
      }
      ++budget_.evaluations;
      V5 out;
      auto fold = [&](V3 unit, auto&& op, bool invert) {
        out = Both(unit);
        for (size_t pin = 0; pin < node.fanin.size(); ++pin) {
          V5 in = values_[static_cast<size_t>(node.fanin[pin])];
          if (HasFaultAt(id, static_cast<int>(pin))) in.faulty = Forced();
          out.good = op(out.good, in.good);
          out.faulty = op(out.faulty, in.faulty);
        }
        if (invert) {
          out.good = sim::Not3(out.good);
          out.faulty = sim::Not3(out.faulty);
        }
      };
      switch (node.kind) {
        case NodeKind::kConst0: out = Both(V3::k0); break;
        case NodeKind::kConst1: out = Both(V3::k1); break;
        case NodeKind::kOutput:
        case NodeKind::kBuf:
        case NodeKind::kNot:
          out = values_[static_cast<size_t>(node.fanin[0])];
          if (HasFaultAt(id, 0)) out.faulty = Forced();
          if (node.kind == NodeKind::kNot) {
            out.good = sim::Not3(out.good);
            out.faulty = sim::Not3(out.faulty);
          }
          break;
        case NodeKind::kAnd: fold(V3::k1, sim::And3, false); break;
        case NodeKind::kNand: fold(V3::k1, sim::And3, true); break;
        case NodeKind::kOr: fold(V3::k0, sim::Or3, false); break;
        case NodeKind::kNor: fold(V3::k0, sim::Or3, true); break;
        case NodeKind::kXor: fold(V3::k0, sim::Xor3, false); break;
        case NodeKind::kXnor: fold(V3::k0, sim::Xor3, true); break;
        default: out = V5::X(); break;
      }
      if (HasFaultAt(id, -1)) out.faulty = Forced();
      values_[static_cast<size_t>(id)] = out;
    }
  }

  /// The value latched by DFF index b (with a data-pin fault applied).
  V5 Latched(size_t b) const {
    const NodeId dff = circuit_.dffs()[b];
    V5 v = values_[static_cast<size_t>(circuit_.node(dff).fanin[0])];
    if (HasFaultAt(dff, 0)) v.faulty = Forced();
    return v;
  }

  /// Returns kSatisfied, kConflict, or the index of an unsatisfied
  /// target bit (one whose latched value still has an unknown side).
  int CheckTargets() {
    int unsatisfied = kSatisfied;
    for (size_t b = 0; b < target_.size(); ++b) {
      if (target_[b] == V3::kX) continue;
      const V5 value = Latched(b);
      if ((value.good != V3::kX && value.good != target_[b]) ||
          (value.faulty != V3::kX && value.faulty != target_[b])) {
        return kConflict;
      }
      if (value.good == V3::kX || value.faulty == V3::kX) {
        if (unsatisfied == kSatisfied) unsatisfied = static_cast<int>(b);
      }
    }
    return unsatisfied;
  }

  std::optional<Decision> Backtrace(int target_bit) {
    NodeId where = circuit_.node(circuit_.dffs()[static_cast<size_t>(
        target_bit)]).fanin[0];
    V3 value = target_[static_cast<size_t>(target_bit)];
    for (int guard = 0; guard < 1'000'000; ++guard) {
      const Node& node = circuit_.node(where);
      switch (node.kind) {
        case NodeKind::kInput: {
          int pi_index = 0;
          for (NodeId pi : circuit_.inputs()) {
            if (pi == where) break;
            ++pi_index;
          }
          if (pi_[static_cast<size_t>(pi_index)] != V3::kX) {
            return std::nullopt;  // already assigned; nothing to decide
          }
          Decision decision;
          decision.pi = pi_index;
          decision.value = value;
          return decision;
        }
        case NodeKind::kDff: {
          int ppi_index = 0;
          for (NodeId dff : circuit_.dffs()) {
            if (dff == where) break;
            ++ppi_index;
          }
          if (ppi_[static_cast<size_t>(ppi_index)] != V3::kX) {
            return std::nullopt;
          }
          Decision decision;
          decision.ppi = ppi_index;
          decision.value = value;
          return decision;
        }
        case NodeKind::kNot:
          value = sim::Not3(value);
          [[fallthrough]];
        case NodeKind::kBuf:
        case NodeKind::kOutput:
          where = node.fanin[0];
          break;
        case NodeKind::kNand:
        case NodeKind::kNor:
          value = sim::Not3(value);
          [[fallthrough]];
        case NodeKind::kAnd:
        case NodeKind::kOr:
        case NodeKind::kXor:
        case NodeKind::kXnor: {
          // Prefer inputs whose cone reaches a real PI: assignments
          // there relax the predecessor cube faster.
          NodeId chosen = netlist::kNoNode;
          for (int pass = 0; pass < 2 && chosen == netlist::kNoNode; ++pass) {
            for (NodeId driver : node.fanin) {
              const V5& v = values_[static_cast<size_t>(driver)];
              if (v.good != V3::kX && v.faulty != V3::kX) continue;
              if (pass == 0 && !pi_reachable_[static_cast<size_t>(driver)]) {
                continue;
              }
              chosen = driver;
              break;
            }
          }
          if (chosen == netlist::kNoNode) return std::nullopt;
          where = chosen;
          break;
        }
        default:
          return std::nullopt;  // constants
      }
    }
    return std::nullopt;
  }

  void Apply(const Decision& decision) {
    if (decision.pi >= 0) {
      pi_[static_cast<size_t>(decision.pi)] = decision.value;
    } else {
      ppi_[static_cast<size_t>(decision.ppi)] = decision.value;
    }
  }

  bool Backtrack() {
    while (!stack_.empty()) {
      Decision& top = stack_.back();
      if (!top.flipped) {
        top.flipped = true;
        top.value = sim::Not3(top.value);
        Apply(top);
        return true;
      }
      // Unassign.
      if (top.pi >= 0) {
        pi_[static_cast<size_t>(top.pi)] = V3::kX;
      } else {
        ppi_[static_cast<size_t>(top.ppi)] = V3::kX;
      }
      stack_.pop_back();
    }
    return false;
  }

  const netlist::Circuit& circuit_;
  const sim::Levelization& levels_;
  const std::vector<char>& pi_reachable_;
  const std::vector<V3>& target_;
  const std::optional<fault::Fault>& fault_;
  Budget& budget_;
  std::vector<V5> values_;
  std::vector<V3> pi_;
  std::vector<V3> ppi_;
  std::vector<Decision> stack_;
  bool yielded_ = false;
  bool done_ = false;
};

class Justifier {
 public:
  Justifier(const netlist::Circuit& circuit, const JustifyOptions& options,
            const std::optional<fault::Fault>& fault, JustifyCache* cache)
      : circuit_(circuit),
        options_(options),
        fault_(fault),
        cache_(cache),
        levels_(sim::Levelize(circuit)) {
    budget_.options = &options_;
    // Static reachability of a real PI per node.
    pi_reachable_.assign(static_cast<size_t>(circuit.size()), 0);
    for (NodeId id : levels_.order) {
      const Node& node = circuit.node(id);
      if (node.kind == NodeKind::kInput) {
        pi_reachable_[static_cast<size_t>(id)] = 1;
      } else if (node.kind == NodeKind::kDff) {
        pi_reachable_[static_cast<size_t>(id)] = 0;
      } else {
        char value = 0;
        for (NodeId driver : node.fanin) {
          value |= pi_reachable_[static_cast<size_t>(driver)];
        }
        pi_reachable_[static_cast<size_t>(id)] = value;
      }
    }
  }

  JustifyResult Run(const std::vector<V3>& target) {
    JustifyResult result;
    sim::InputSequence sequence;
    const bool ok = Recurse(target, 0, sequence);
    result.backtracks = budget_.backtracks;
    result.evaluations = budget_.evaluations;
    if (ok) {
      result.status = JustifyStatus::kJustified;
      result.sequence = std::move(sequence);
    } else {
      result.status = budget_.Exhausted() ? JustifyStatus::kAborted
                                          : JustifyStatus::kFailed;
    }
    return result;
  }

 private:
  bool Recurse(const std::vector<V3>& target, int depth,
               sim::InputSequence& sequence) {
    bool trivial = true;
    for (V3 v : target) trivial &= (v == V3::kX);
    if (trivial) return true;  // any state will do
    if (cache_ != nullptr) {
      if (const sim::InputSequence* known = cache_->FindSuccess(target)) {
        sequence = *known;
        return true;
      }
      if (cache_->IsKnownFailure(target, fault_)) return false;
    }
    if (depth >= options_.max_depth || budget_.Exhausted()) return false;

    FrameSolver solver(circuit_, levels_, pi_reachable_, target, fault_,
                       budget_);
    while (solver.Next()) {
      if (Recurse(solver.predecessor(), depth + 1, sequence)) {
        // Prefix found for the predecessor; append this frame's
        // inputs (X's are free -- fill with 0).
        std::vector<V3> vector = solver.inputs();
        for (V3& v : vector) {
          if (v == V3::kX) v = V3::k0;
        }
        sequence.push_back(std::move(vector));
        if (cache_ != nullptr) cache_->RecordSuccess(target, sequence);
        return true;
      }
    }
    if (cache_ != nullptr && !budget_.Exhausted()) {
      cache_->RecordFailure(target, fault_);
    }
    return false;
  }

  const netlist::Circuit& circuit_;
  JustifyOptions options_;
  std::optional<fault::Fault> fault_;
  JustifyCache* cache_;
  sim::Levelization levels_;
  std::vector<char> pi_reachable_;
  Budget budget_;
};

}  // namespace

const sim::InputSequence* JustifyCache::FindSuccess(
    const std::vector<V3>& target) const {
  for (const auto& [cube, sequence] : successes_) {
    if (cube.size() != target.size()) continue;
    bool subsumes = true;
    for (size_t b = 0; b < target.size() && subsumes; ++b) {
      if (target[b] != V3::kX && cube[b] != target[b]) subsumes = false;
    }
    if (subsumes) return &sequence;
  }
  return nullptr;
}

bool JustifyCache::IsKnownFailure(
    const std::vector<V3>& target,
    const std::optional<fault::Fault>& fault) const {
  for (const auto& [cube, tag] : failures_) {
    if (cube == target && tag == fault) return true;
  }
  return false;
}

void JustifyCache::RecordSuccess(const std::vector<V3>& cube,
                                 sim::InputSequence sequence) {
  if (FindSuccess(cube) != nullptr) return;
  successes_.emplace_back(cube, std::move(sequence));
}

void JustifyCache::RecordFailure(const std::vector<V3>& cube,
                                 const std::optional<fault::Fault>& fault) {
  if (IsKnownFailure(cube, fault)) return;
  failures_.emplace_back(cube, fault);
}

JustifyResult JustifyState(const netlist::Circuit& circuit,
                           const std::vector<V3>& target,
                           const JustifyOptions& options,
                           const std::optional<fault::Fault>& fault,
                           JustifyCache* cache) {
  Justifier justifier(circuit, options, fault, cache);
  return justifier.Run(target);
}

}  // namespace retest::atpg
