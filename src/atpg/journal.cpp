#include "atpg/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/chaos.h"
#include "core/crc32.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "sim/logic3.h"

namespace retest::atpg {
namespace {

using core::StatusCode;

constexpr char kRecordSeparator = '|';

/// Syncs the directory containing `path` so a just-completed rename
/// inside it survives a power cut.  Best-effort: some filesystems
/// refuse directory fsync; the rename is still process-crash safe.
void FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string EncodeSequence(const sim::InputSequence& sequence) {
  std::string out;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (i > 0) out += ',';
    if (sequence[i].empty()) {
      out += '-';  // zero-input circuit: the vector itself is empty
    } else {
      for (sim::V3 v : sequence[i]) out += sim::ToChar(v);
    }
  }
  return out;
}

bool DecodeSequence(const std::string& text, sim::InputSequence& out) {
  out.clear();
  if (text.empty()) return false;
  sim::InputVector vector;
  for (char c : text) {
    if (c == ',') {
      out.push_back(vector);
      vector.clear();
    } else if (c == '-') {
      // stands for an empty vector; nothing to append
    } else if (c == '0' || c == '1' || c == 'x') {
      vector.push_back(sim::FromChar(c));
    } else {
      return false;
    }
  }
  out.push_back(vector);
  return true;
}

// Incremental fingerprint helper: numbers are hashed via their decimal
// rendering with a separator, so field boundaries cannot alias.
class Hasher {
 public:
  void Text(std::string_view text) {
    crc_ = core::Crc32(text, crc_);
    crc_ = core::Crc32("\x1f", crc_);
  }
  void Number(long long value) { Text(std::to_string(value)); }
  std::uint32_t value() const { return crc_; }

 private:
  std::uint32_t crc_ = 0;
};

struct LineParser {
  std::istringstream in;
  bool failed = false;

  explicit LineParser(const std::string& body) : in(body) {}

  std::string Token() {
    std::string token;
    if (!(in >> token)) failed = true;
    return token;
  }
  unsigned long long Unsigned() {
    unsigned long long value = 0;
    if (!(in >> value)) failed = true;
    return value;
  }
  long long Signed() {
    long long value = 0;
    if (!(in >> value)) failed = true;
    return value;
  }
  /// Everything after the current position, without the leading space.
  std::string Rest() {
    std::string rest;
    std::getline(in, rest);
    if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
    return rest;
  }
  bool AtEnd() {
    std::string extra;
    return !(in >> extra);
  }
};

bool ValidCommitStatus(char c) {
  return c == 'D' || c == 'R' || c == 'A' || c == 'U' || c == 'S';
}

}  // namespace

std::uint32_t JournalFingerprint(const netlist::Circuit& circuit,
                                 const AtpgOptions& options,
                                 std::size_t num_faults) {
  Hasher hash;
  hash.Text("retest-atpg-journal-v1");
  hash.Text(circuit.name());
  hash.Number(circuit.size());
  for (netlist::NodeId id = 0; id < circuit.size(); ++id) {
    const netlist::Node& node = circuit.node(id);
    hash.Number(static_cast<long long>(node.kind));
    hash.Text(node.name);
    hash.Number(static_cast<long long>(node.fanin.size()));
    for (netlist::NodeId driver : node.fanin) hash.Number(driver);
  }
  hash.Number(static_cast<long long>(options.seed));
  hash.Number(static_cast<long long>(options.style));
  hash.Number(options.justify_max_depth);
  hash.Number(options.justify_backtracks);
  hash.Number(options.random_rounds);
  hash.Number(options.random_length_factor);
  hash.Number(options.random_patience);
  hash.Number(options.max_frames);
  hash.Number(options.backtracks_per_fault);
  hash.Number(options.evaluations_per_fault);
  hash.Number(options.redundancy_check ? 1 : 0);
  hash.Number(static_cast<long long>(num_faults));
  return hash.value();
}

std::optional<JournalContents> LoadJournal(const std::string& path,
                                           core::DiagnosticList& diags) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // absent journal: a normal first run
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  JournalContents out;
  bool seen_header = false;
  int line_no = 0;
  std::size_t start = 0;

  auto corrupt = [&](const std::string& what) {
    diags.Add(StatusCode::kCorruptData,
              "journal record " + std::to_string(line_no) + ": " + what, path,
              line_no);
  };

  while (start < data.size()) {
    const std::size_t newline = data.find('\n', start);
    if (newline == std::string::npos) {
      // A final line without its terminator is a write torn by a
      // crash; the intact prefix is still a valid journal.
      diags.AddNote(StatusCode::kCorruptData,
                    "dropped torn final record (crash during write)", path,
                    line_no + 1);
      break;
    }
    const std::string line = data.substr(start, newline - start);
    start = newline + 1;
    ++line_no;
    if (line.empty()) continue;

    const std::size_t sep = line.rfind(kRecordSeparator);
    if (sep == std::string::npos || line.size() - sep - 1 != 8) {
      corrupt("missing CRC suffix");
      return std::nullopt;
    }
    const std::string body = line.substr(0, sep);
    const std::string crc_text = line.substr(sep + 1);
    std::uint32_t expected = 0;
    if (std::sscanf(crc_text.c_str(), "%8x", &expected) != 1) {
      corrupt("unreadable CRC suffix");
      return std::nullopt;
    }
    if (core::Crc32(body) != expected) {
      corrupt("CRC mismatch");
      return std::nullopt;
    }

    LineParser parser(body);
    const std::string tag = parser.Token();
    if (!seen_header && tag != "J1") {
      corrupt("expected J1 header record first");
      return std::nullopt;
    }
    if (out.complete) {
      corrupt("record after end marker");
      return std::nullopt;
    }

    if (tag == "J1") {
      if (seen_header) {
        corrupt("duplicate header record");
        return std::nullopt;
      }
      const std::string fp_text = parser.Token();
      std::uint32_t fp = 0;
      if (fp_text.size() != 8 ||
          std::sscanf(fp_text.c_str(), "%8x", &fp) != 1) {
        corrupt("unreadable fingerprint");
        return std::nullopt;
      }
      out.fingerprint = fp;
      out.seed = parser.Unsigned();
      out.num_faults = static_cast<std::size_t>(parser.Unsigned());
      out.circuit_name = parser.Rest();
      if (parser.failed) {
        corrupt("malformed header fields");
        return std::nullopt;
      }
      seen_header = true;
    } else if (tag == "T") {
      if (out.random_done) {
        corrupt("random-test record after random-done record");
        return std::nullopt;
      }
      JournalRandomTest record;
      const std::size_t n = static_cast<std::size_t>(parser.Unsigned());
      for (std::size_t i = 0; i < n && !parser.failed; ++i) {
        record.detected.push_back(static_cast<std::size_t>(parser.Unsigned()));
      }
      const std::string sequence = parser.Token();
      if (parser.failed || n == 0 || !parser.AtEnd() ||
          !DecodeSequence(sequence, record.test)) {
        corrupt("malformed random-test record");
        return std::nullopt;
      }
      out.random_tests.push_back(std::move(record));
    } else if (tag == "R") {
      if (out.random_done) {
        corrupt("duplicate random-done record");
        return std::nullopt;
      }
      out.random_rounds = static_cast<int>(parser.Signed());
      out.random_useless = static_cast<int>(parser.Signed());
      const long long stopped = parser.Signed();
      out.remaining_count = static_cast<std::size_t>(parser.Unsigned());
      out.random_evaluations = static_cast<long>(parser.Signed());
      if (parser.failed || !parser.AtEnd() || (stopped != 0 && stopped != 1)) {
        corrupt("malformed random-done record");
        return std::nullopt;
      }
      out.random_stopped = stopped == 1;
      out.random_done = true;
    } else if (tag == "C") {
      if (!out.random_done) {
        corrupt("commit record before random-done record");
        return std::nullopt;
      }
      JournalCommit record;
      record.pos = static_cast<std::size_t>(parser.Unsigned());
      const std::string status = parser.Token();
      record.evaluations = static_cast<long>(parser.Signed());
      const std::size_t ncross = static_cast<std::size_t>(parser.Unsigned());
      for (std::size_t i = 0; i < ncross && !parser.failed; ++i) {
        record.cross_retired.push_back(
            static_cast<std::size_t>(parser.Unsigned()));
      }
      if (parser.failed || status.size() != 1 ||
          !ValidCommitStatus(status[0])) {
        corrupt("malformed commit record");
        return std::nullopt;
      }
      record.status = status[0];
      if (record.status == 'D') {
        const std::string sequence = parser.Token();
        if (parser.failed || !DecodeSequence(sequence, record.test)) {
          corrupt("detected commit record without a valid test sequence");
          return std::nullopt;
        }
      }
      if (!parser.AtEnd()) {
        corrupt("trailing fields in commit record");
        return std::nullopt;
      }
      out.commits.push_back(std::move(record));
    } else if (tag == "E") {
      // The four counts are a human-debugging aid; replay recomputes
      // them from the commits themselves.
      for (int i = 0; i < 4; ++i) parser.Signed();
      if (parser.failed || !parser.AtEnd()) {
        corrupt("malformed end record");
        return std::nullopt;
      }
      out.complete = true;
    } else {
      corrupt("unknown record tag '" + tag + "'");
      return std::nullopt;
    }
  }

  if (!seen_header) {
    // Nothing but a torn line (or an empty file): treat as absent.
    return std::nullopt;
  }
  return out;
}

std::unique_ptr<JournalWriter> JournalWriter::Open(
    const std::string& path, core::DiagnosticList& diags) {
  const std::string tmp = path + ".tmp";
  std::FILE* file =
      RETEST_CHAOS_FIRE("atpg.journal.open_error")
          ? nullptr
          : std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    diags.Add(StatusCode::kIoError,
              "cannot open checkpoint journal for writing", tmp);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(file, path));
}

JournalWriter::JournalWriter(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::WriteLine(const std::string& body) {
  if (torn_) return;
  char crc[10];
  std::snprintf(crc, sizeof crc, "%c%08x", kRecordSeparator,
                core::Crc32(body));
  std::string line = body;
  line += crc;
  line += '\n';
  long keep = 0;
  if (RETEST_CHAOS_ARG("atpg.journal.torn_write",
                       static_cast<long>(line.size() / 2), &keep)) {
    // Chaos: simulate a crash mid-write.  Emit a prefix of this record
    // and go silent — the in-memory run continues, but the file ends
    // in exactly the torn final line LoadJournal must drop on resume.
    torn_ = true;
    const std::size_t bytes = std::min(
        line.size(), static_cast<std::size_t>(std::max(0L, keep)));
    std::fwrite(line.data(), 1, bytes, file_);
    std::fflush(file_);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), file_);
}

void JournalWriter::WriteHeader(std::uint32_t fingerprint, std::uint64_t seed,
                                std::size_t num_faults,
                                const std::string& circuit_name) {
  char fp[9];
  std::snprintf(fp, sizeof fp, "%08x", fingerprint);
  WriteLine(std::string("J1 ") + fp + ' ' + std::to_string(seed) + ' ' +
            std::to_string(num_faults) + ' ' + circuit_name);
}

void JournalWriter::WriteRandomTest(const JournalRandomTest& record) {
  std::string body = "T " + std::to_string(record.detected.size());
  for (std::size_t index : record.detected) {
    body += ' ';
    body += std::to_string(index);
  }
  body += ' ';
  body += EncodeSequence(record.test);
  WriteLine(body);
}

void JournalWriter::WriteRandomDone(int rounds, int useless, bool stopped,
                                    std::size_t remaining, long evaluations) {
  WriteLine("R " + std::to_string(rounds) + ' ' + std::to_string(useless) +
            ' ' + std::to_string(stopped ? 1 : 0) + ' ' +
            std::to_string(remaining) + ' ' + std::to_string(evaluations));
}

void JournalWriter::WriteCommit(const JournalCommit& record) {
  RETEST_TRACE_SPAN(write_span, "atpg.journal.write");
  std::string body = "C " + std::to_string(record.pos) + ' ' + record.status +
                     ' ' + std::to_string(record.evaluations) + ' ' +
                     std::to_string(record.cross_retired.size());
  for (std::size_t pos : record.cross_retired) {
    body += ' ';
    body += std::to_string(pos);
  }
  if (record.status == 'D') {
    body += ' ';
    body += EncodeSequence(record.test);
  }
  WriteLine(body);
}

void JournalWriter::WriteEnd(int detected, int redundant, int aborted,
                             int untried) {
  WriteLine("E " + std::to_string(detected) + ' ' + std::to_string(redundant) +
            ' ' + std::to_string(aborted) + ' ' + std::to_string(untried));
}

bool JournalWriter::Activate(core::DiagnosticList& diags) {
  if (activated_) return true;
  // Durability order: records -> file fsync -> rename -> directory
  // fsync.  Without the first fsync the rename can publish a name
  // whose bytes are still in the page cache; without the second the
  // rename itself can vanish in a power cut (docs/ROBUSTNESS.md).
  std::fflush(file_);
  ::fsync(fileno(file_));
  if (std::rename((path_ + ".tmp").c_str(), path_.c_str()) != 0) {
    diags.Add(StatusCode::kIoError,
              "cannot rename checkpoint journal into place", path_);
    return false;
  }
  FsyncParentDir(path_);
  RETEST_COUNTER_ADD("atpg.journal.fsync", "syncs", "atpg",
                     "journal file + parent-directory fsync pairs at "
                     "activation",
                     1);
  activated_ = true;
  return true;
}

void JournalWriter::Flush() {
  RETEST_TRACE_SPAN(flush_span, "atpg.journal.flush");
  std::fflush(file_);
}

}  // namespace retest::atpg
