// Fault-parallel deterministic ATPG phase.
//
// Remaining faults are dispatched across a core::ThreadPool work queue
// in fault order.  Each worker keeps two reusable unrolled models (the
// 1-frame redundancy prover and the depth-doubling search model) and
// re-arms them per fault with UnrolledModel::SetFault / GrowFrames, so
// the per-fault path performs no model reconstruction.
//
// Determinism at any thread count: each fault's search is a pure
// function of (circuit, fault, seed) -- per-fault RNG streams, no
// shared learned state -- and results commit strictly in fault order.
// A committed test is fault-simulated (cone-restricted PROOFS) against
// the faults beyond the commit frontier; the retired ones are marked
// detected, and a speculative search result for a retired fault is
// discarded at commit, exactly as if the fault had never been
// searched.  Workers consult the retirement map when they claim a
// fault, so one worker's test retires other workers' *queued* faults
// early -- that cooperation only saves wall clock; the committed
// outcome (status sets, test list, evaluation counters) is identical
// to a 1-thread run of the same seed.  The wall-clock budget is a
// shared atomic stop flag: it preempts queued faults (committed as
// kUntried) and cooperatively aborts in-flight PODEM searches.
//
// tests/atpg_parallel_test.cpp locks the contract in;
// docs/ARCHITECTURE.md states it alongside the other subsystem
// invariants.  The phase's atpg.det.* / atpg.justify.* metrics and
// atpg.* trace spans (docs/METRICS.md) are observational only --
// budget-preemption *counts* vary run to run, committed results never
// do.
#pragma once

#include <cstddef>
#include <vector>

#include "atpg/engine.h"

namespace retest::atpg {

/// Runs the deterministic phase of RunAtpg over `remaining` (indices
/// into result.faults that the random phase left undetected), updating
/// result.status / tests / evaluations / threads_used in place.
/// `elapsed_ms` is the wall clock RunAtpg already consumed; the phase
/// honours the remainder of options.time_budget_ms.
void RunDeterministicPhase(const netlist::Circuit& circuit,
                           const AtpgOptions& options,
                           const std::vector<std::size_t>& remaining,
                           long elapsed_ms, AtpgResult& result);

}  // namespace retest::atpg
