// Fault-parallel deterministic ATPG phase.
//
// Remaining faults are dispatched across a core::ThreadPool work queue
// in fault order.  Each worker keeps two reusable unrolled models (the
// 1-frame redundancy prover and the depth-doubling search model) and
// re-arms them per fault with UnrolledModel::SetFault / GrowFrames, so
// the per-fault path performs no model reconstruction.
//
// Determinism at any thread count: each fault's search is a pure
// function of (circuit, fault, seed) -- per-fault RNG streams, no
// shared learned state -- and results commit strictly in fault order.
// A committed test is fault-simulated (cone-restricted PROOFS) against
// the faults beyond the commit frontier; the retired ones are marked
// detected, and a speculative search result for a retired fault is
// discarded at commit, exactly as if the fault had never been
// searched.  Workers consult the retirement map when they claim a
// fault, so one worker's test retires other workers' *queued* faults
// early -- that cooperation only saves wall clock; the committed
// outcome (status sets, test list, evaluation counters) is identical
// to a 1-thread run of the same seed.  The wall-clock budget is a
// shared atomic stop flag: it preempts queued faults (committed as
// kUntried) and cooperatively aborts in-flight PODEM searches.
//
// Scaling: workers never block on the frontier.  A finished search is
// *parked* lock-free (release store into the fault's slot); the
// frontier is then drained by whichever single worker wins a try_lock
// on the commit mutex, so the heavy commit-path work -- the retirement
// fault simulation and the checkpoint journal writes/flushes -- runs
// concurrently with every other worker's searches instead of
// serializing them.  Journal flushes are batched per drain, keeping
// durability at the same consistency points with far fewer flushes.
// The atpg.frontier.wait_ms distribution records what little frontier
// service time remains on the worker path.
//
// tests/atpg_parallel_test.cpp locks the contract in;
// docs/ARCHITECTURE.md states it alongside the other subsystem
// invariants.  The phase's atpg.det.* / atpg.justify.* metrics and
// atpg.* trace spans (docs/METRICS.md) are observational only --
// budget-preemption *counts* vary run to run, committed results never
// do.
#pragma once

#include <cstddef>
#include <vector>

#include "atpg/engine.h"

namespace retest::atpg {

class JournalWriter;

/// Resilience hooks for the deterministic phase (all optional; the
/// default-constructed value reproduces the plain phase exactly).
struct DetPhaseControl {
  /// Commit frontier restored from a checkpoint journal: queue
  /// positions below it are already committed into `result` and are
  /// not dispatched again.
  std::size_t resume_frontier = 0;
  /// Restored retirement map by queue position (empty = none retired).
  /// Positions >= resume_frontier marked here were cross-retired by a
  /// replayed test; the driver commits them as discards, exactly as
  /// the original run would have.
  std::vector<char> resume_retired;
  /// When set, every commit is appended as a journal record and the
  /// journal is flushed each time the frontier advances (not owned).
  JournalWriter* journal = nullptr;
  /// Per-fault search timeout (ms, 0 = off): a core::Watchdog monitor
  /// preempts overrunning searches; the fault commits as a clean
  /// kUntried with zero evaluations, and the run continues.
  long fault_timeout_ms = 0;
};

/// Runs the deterministic phase of RunAtpg over `remaining` (indices
/// into result.faults that the random phase left undetected), updating
/// result.status / tests / evaluations / threads_used / preempted /
/// watchdog_preemptions in place.  `budget_ms` is the wall clock the
/// phase may spend (the caller already subtracted what the random
/// phase consumed).  `control` adds checkpoint/watchdog behaviour; a
/// null control is the plain phase.
void RunDeterministicPhase(const netlist::Circuit& circuit,
                           const AtpgOptions& options,
                           const std::vector<std::size_t>& remaining,
                           long budget_ms, AtpgResult& result,
                           const DetPhaseControl* control = nullptr);

}  // namespace retest::atpg
