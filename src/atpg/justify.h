// HITEC-style backward state justification.
//
// Given a required state cube (per-DFF values, X = don't care), search
// for an input sequence that drives the machine from the completely
// unknown state into a state compatible with the cube.  The search
// proceeds one time frame at a time: a frame solver enumerates
// (input vector, predecessor state cube) pairs whose next-state
// function covers the target, and the driver recurses on the
// predecessor cube until it relaxes to all-X (reachable from anywhere).
//
// This is the paper's pain point: a retimed circuit's registers can
// hold combinations "inconsistent with the values produced by the
// logical structure" (Section III), so justification on retimed
// circuits fails late and explosively -- which is what Table II's CPU
// ratios measure.
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "netlist/circuit.h"
#include "sim/simulator.h"

namespace retest::atpg {

/// Limits for a justification search.  `budget` members are shared
/// across the whole recursion.
struct JustifyOptions {
  int max_depth = 24;          ///< Frames of backward recursion.
  long max_backtracks = 4000;  ///< Total decision flips across the search.
  long max_evaluations = 20'000'000;
  /// Cooperative preemption: when set and it becomes true, the search
  /// aborts at the next budget check (watchdog / deadline stops).
  const std::atomic<bool>* stop = nullptr;
};

enum class JustifyStatus {
  kJustified,
  kFailed,   ///< Search space exhausted within depth: no sequence.
  kAborted,  ///< Limits hit.
};

struct JustifyResult {
  JustifyStatus status = JustifyStatus::kAborted;
  /// On success: applying this sequence from the all-X state leaves
  /// every non-X target bit at its required value.
  sim::InputSequence sequence;
  long backtracks = 0;
  long evaluations = 0;
};

/// Learned justification results shared across faults of one ATPG run
/// (HITEC keeps similar state knowledge).  Successful entries are
/// reused for any target they subsume; failures are keyed exactly.
/// Cache entries from fault-free justifications are sound for any
/// fault-free query; the ATPG only shares a cache across queries of
/// the same composite machine semantics (see engine.cpp).
class JustifyCache {
 public:
  /// A sequence known to realize a cube subsuming `target` from the
  /// all-X state, or nullptr when none is recorded.  Successes are
  /// shared across faults (the ATPG verifies candidates by fault
  /// simulation, so a stale hit can cost a retry but never a wrong
  /// detection claim).
  const sim::InputSequence* FindSuccess(
      const std::vector<sim::V3>& target) const;

  /// Failures are fault-specific: a cube unjustifiable under one
  /// composite machine may be justifiable under another.
  bool IsKnownFailure(const std::vector<sim::V3>& target,
                      const std::optional<fault::Fault>& fault) const;

  void RecordSuccess(const std::vector<sim::V3>& cube,
                     sim::InputSequence sequence);
  void RecordFailure(const std::vector<sim::V3>& cube,
                     const std::optional<fault::Fault>& fault);

  size_t successes() const { return successes_.size(); }
  size_t failures() const { return failures_.size(); }

 private:
  std::vector<std::pair<std::vector<sim::V3>, sim::InputSequence>> successes_;
  std::vector<std::pair<std::vector<sim::V3>, std::optional<fault::Fault>>>
      failures_;
};

/// Runs the backward justification for `target` (size = num_dffs).
/// When `fault` is given, justification runs on the composite
/// good/faulty machine (the fault injected in every frame): every
/// assigned target bit must be reached in BOTH machines, which is what
/// test generation needs (Lemmas 4/5: the faulty machine must be
/// synchronized too).  Without a fault, only the good machine is
/// constrained.  `cache` (optional) carries learned results across
/// calls.
JustifyResult JustifyState(const netlist::Circuit& circuit,
                           const std::vector<sim::V3>& target,
                           const JustifyOptions& options = {},
                           const std::optional<fault::Fault>& fault =
                               std::nullopt,
                           JustifyCache* cache = nullptr);

}  // namespace retest::atpg
