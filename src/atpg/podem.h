// PODEM branch-and-bound search over an unrolled model.
//
// Decision variables are the frame PIs (plus the frame-0 state bits in
// free_state mode).  Objectives alternate between exciting the fault
// and advancing the D-frontier; backtracing maps an objective to an
// unassigned decision variable.  The search is complete: exhausting the
// decision tree proves that no test exists *for this model* (which is a
// redundancy proof exactly when the model is 1 frame, free-state,
// state-observing).
#pragma once

#include <atomic>
#include <cstdint>

#include "atpg/unrolled.h"

namespace retest::atpg {

/// Search limits.
struct PodemOptions {
  long max_backtracks = 5000;
  /// Cap on node evaluations (the deterministic work measure); the
  /// search aborts when exceeded.
  long max_evaluations = 50'000'000;
  /// Optional cooperative-preemption flag (not owned): when it becomes
  /// true the search aborts at the next decision.  The fault-parallel
  /// ATPG driver uses it to enforce the wall-clock budget across
  /// workers.
  const std::atomic<bool>* stop = nullptr;
};

/// Search outcome.
enum class PodemStatus {
  kFound,      ///< Test found; read it off the model's InputSequence().
  kExhausted,  ///< Complete search: no test exists for this model.
  kAborted,    ///< A limit was hit first.
};

/// Search statistics (work accounting feeds the ATPG CPU numbers).
struct PodemResult {
  PodemStatus status = PodemStatus::kAborted;
  long backtracks = 0;
  long evaluations = 0;
};

/// Runs PODEM on `model` (which carries the fault and frame count).
/// On kFound the satisfying assignment is left in the model.
PodemResult RunPodem(UnrolledModel& model, const PodemOptions& options = {});

}  // namespace retest::atpg
