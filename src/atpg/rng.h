// Deterministic RNG shared by the ATPG driver components.
//
// Splitmix64: platform-stable, cheap, and good enough for X-filling
// test vectors and random-phase sequences.  The fault-parallel
// deterministic phase derives one stream per fault from (seed, fault
// index) so a fault's search is a pure function of the fault and the
// run seed -- never of scheduling or thread count.
#pragma once

#include <cstddef>
#include <cstdint>

namespace retest::atpg {

struct Rng {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  bool Bit() { return Next() & 1; }
};

/// Decorrelated per-fault seed: fault `index`'s deterministic-phase
/// stream depends only on (seed, index).
inline std::uint64_t FaultSeed(std::uint64_t seed, std::size_t index) {
  Rng rng{seed ^ (0xbf58476d1ce4e5b9ull *
                  (static_cast<std::uint64_t>(index) + 1))};
  return rng.Next();
}

}  // namespace retest::atpg
