#include "atpg/engine.h"

#include <algorithm>
#include <chrono>

#include "atpg/justify.h"
#include "atpg/podem.h"
#include "atpg/unrolled.h"
#include "faultsim/proofs.h"
#include "faultsim/serial.h"

namespace retest::atpg {
namespace {

using sim::InputSequence;
using sim::V3;

struct Rng {
  std::uint64_t state;
  std::uint64_t Next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  bool Bit() { return Next() & 1; }
};

InputSequence RandomSequence(Rng& rng, int num_inputs, int length) {
  InputSequence sequence(static_cast<size_t>(length));
  for (auto& vector : sequence) {
    vector.resize(static_cast<size_t>(num_inputs));
    for (auto& v : vector) v = rng.Bit() ? V3::k1 : V3::k0;
  }
  return sequence;
}

class Clock {
 public:
  Clock() : start_(std::chrono::steady_clock::now()) {}
  long ElapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int AtpgResult::Count(FaultStatus wanted) const {
  int count = 0;
  for (FaultStatus s : status) count += s == wanted ? 1 : 0;
  return count;
}

double AtpgResult::FaultCoverage() const {
  if (faults.empty()) return 100.0;
  return 100.0 * Count(FaultStatus::kDetected) /
         static_cast<double>(faults.size());
}

double AtpgResult::FaultEfficiency() const {
  if (faults.empty()) return 100.0;
  return 100.0 *
         (Count(FaultStatus::kDetected) + Count(FaultStatus::kRedundant)) /
         static_cast<double>(faults.size());
}

InputSequence AtpgResult::ConcatenatedTests() const {
  InputSequence all;
  for (const InputSequence& test : tests) {
    all.insert(all.end(), test.begin(), test.end());
  }
  return all;
}

AtpgResult RunAtpg(const netlist::Circuit& circuit,
                   const AtpgOptions& options) {
  const Clock clock;
  Rng rng{options.seed};

  AtpgResult result;
  const fault::CollapsedFaults collapsed = fault::Collapse(circuit);
  result.faults = collapsed.representatives;
  result.status.assign(result.faults.size(), FaultStatus::kUntried);

  std::vector<size_t> remaining(result.faults.size());
  for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  auto drop_detected = [&](const InputSequence& sequence) -> int {
    std::vector<fault::Fault> targets;
    targets.reserve(remaining.size());
    for (size_t index : remaining) targets.push_back(result.faults[index]);
    const auto sim_result =
        faultsim::SimulateProofs(circuit, targets, sequence);
    result.evaluations +=
        sim_result.frames_evaluated * static_cast<long>(circuit.size());
    int newly = 0;
    std::vector<size_t> still;
    still.reserve(remaining.size());
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (sim_result.detections[i].detected) {
        result.status[remaining[i]] = FaultStatus::kDetected;
        ++newly;
      } else {
        still.push_back(remaining[i]);
      }
    }
    remaining = std::move(still);
    return newly;
  };

  // ---- Random phase ----
  const int sequence_length =
      options.random_length_factor * (circuit.num_dffs() + 4);
  int useless = 0;
  for (int round = 0; round < options.random_rounds; ++round) {
    if (remaining.empty() || useless >= options.random_patience ||
        clock.ElapsedMs() > options.time_budget_ms) {
      break;
    }
    InputSequence sequence =
        RandomSequence(rng, circuit.num_inputs(), sequence_length);
    if (drop_detected(sequence) > 0) {
      result.tests.push_back(std::move(sequence));
      useless = 0;
    } else {
      ++useless;
    }
  }

  // ---- Deterministic phase ----
  int max_frames = options.max_frames;
  if (max_frames <= 0) {
    max_frames = std::clamp(4 * circuit.num_dffs() + 8, 8, 64);
  }

  // Learned justification results shared across faults (verification
  // by fault simulation gates every reuse, so cross-fault sharing is
  // safe for detection claims).
  JustifyCache justify_cache;

  // Iterate over a snapshot: `remaining` shrinks as fault simulation of
  // new tests drops faults.
  while (!remaining.empty()) {
    if (clock.ElapsedMs() > options.time_budget_ms) break;
    const size_t index = remaining.front();

    FaultStatus status = FaultStatus::kAborted;
    InputSequence found_test;

    // Redundancy proof: one frame, free and observed state.
    if (options.redundancy_check) {
      UnrolledModel model(circuit, result.faults[index], 1,
                          /*free_state=*/true, /*observe_state=*/true);
      PodemOptions podem_options;
      podem_options.max_backtracks = options.backtracks_per_fault * 8;
      podem_options.max_evaluations = options.evaluations_per_fault;
      const PodemResult proof = RunPodem(model, podem_options);
      result.evaluations += proof.evaluations;
      if (proof.status == PodemStatus::kExhausted) {
        status = FaultStatus::kRedundant;
      }
    }

    if (status != FaultStatus::kRedundant &&
        options.style == AtpgStyle::kForwardIla) {
      for (int frames = 1; frames <= max_frames; frames *= 2) {
        if (clock.ElapsedMs() > options.time_budget_ms) break;
        UnrolledModel model(circuit, result.faults[index], frames);
        PodemOptions podem_options;
        podem_options.max_backtracks = options.backtracks_per_fault;
        podem_options.max_evaluations = options.evaluations_per_fault;
        const PodemResult search = RunPodem(model, podem_options);
        result.evaluations += search.evaluations;
        if (search.status == PodemStatus::kFound) {
          status = FaultStatus::kDetected;
          found_test = model.InputSequence();
          // Unassigned inputs: fill with random binary values (cannot
          // lose the detection; it only refines X).
          for (auto& vector : found_test) {
            for (auto& v : vector) {
              if (v == V3::kX) v = rng.Bit() ? V3::k1 : V3::k0;
            }
          }
          break;
        }
      }
    } else if (status != FaultStatus::kRedundant) {
      // HITEC-style: excitation/propagation with a *free* initial
      // state (growing the window as needed), then backward
      // justification of the state the test requires, then
      // verification by fault simulation.
      for (int frames = 1; frames <= max_frames; frames *= 2) {
        if (clock.ElapsedMs() > options.time_budget_ms) break;
        UnrolledModel model(circuit, result.faults[index], frames,
                            /*free_state=*/true);
        PodemOptions podem_options;
        podem_options.max_backtracks = options.backtracks_per_fault;
        podem_options.max_evaluations = options.evaluations_per_fault;
        const PodemResult search = RunPodem(model, podem_options);
        result.evaluations += search.evaluations;
        if (search.status != PodemStatus::kFound) continue;

        JustifyOptions justify_options;
        justify_options.max_depth = options.justify_max_depth;
        justify_options.max_backtracks = options.justify_backtracks;

        auto attempt = [&](JustifyCache* cache) -> bool {
          const JustifyResult justified =
              JustifyState(circuit, model.StateAssignments(), justify_options,
                           result.faults[index], cache);
          result.evaluations += justified.evaluations;
          if (justified.status != JustifyStatus::kJustified) return false;

          sim::InputSequence candidate = justified.sequence;
          for (const auto& vector : model.InputSequence()) {
            candidate.push_back(vector);
          }
          for (auto& vector : candidate) {
            for (auto& v : vector) {
              if (v == V3::kX) v = rng.Bit() ? V3::k1 : V3::k0;
            }
          }
          // Verify by fault simulation (HITEC does the same); composite
          // justification makes success the common case.
          const auto verdict = faultsim::SimulateSerial(
              circuit, std::span(&result.faults[index], 1), candidate);
          result.evaluations += static_cast<long>(candidate.size()) *
                                static_cast<long>(circuit.size());
          if (!verdict[0].detected) return false;
          status = FaultStatus::kDetected;
          found_test = std::move(candidate);
          return true;
        };
        // Cached sequences come from other faults' composite machines;
        // when a cached attempt fails, one uncached retry keeps the
        // cache from costing coverage.
        if (attempt(&justify_cache) || attempt(nullptr)) break;
      }
    }

    result.status[index] = status;
    remaining.erase(remaining.begin());
    if (status == FaultStatus::kDetected) {
      // The generated sequence usually catches more faults.
      drop_detected(found_test);
      result.tests.push_back(std::move(found_test));
    }
  }

  result.elapsed_ms = clock.ElapsedMs();
  return result;
}

}  // namespace retest::atpg
