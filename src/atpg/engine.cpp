#include "atpg/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "atpg/parallel_driver.h"
#include "atpg/rng.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "faultsim/proofs.h"

namespace retest::atpg {
namespace {

using sim::InputSequence;
using sim::V3;

InputSequence RandomSequence(Rng& rng, int num_inputs, int length) {
  InputSequence sequence(static_cast<size_t>(length));
  for (auto& vector : sequence) {
    vector.resize(static_cast<size_t>(num_inputs));
    for (auto& v : vector) v = rng.Bit() ? V3::k1 : V3::k0;
  }
  return sequence;
}

class Clock {
 public:
  Clock() : start_(std::chrono::steady_clock::now()) {}
  long ElapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int AtpgResult::Count(FaultStatus wanted) const {
  int count = 0;
  for (FaultStatus s : status) count += s == wanted ? 1 : 0;
  return count;
}

double AtpgResult::FaultCoverage() const {
  if (faults.empty()) return 100.0;
  return 100.0 * Count(FaultStatus::kDetected) /
         static_cast<double>(faults.size());
}

double AtpgResult::FaultEfficiency() const {
  if (faults.empty()) return 100.0;
  return 100.0 *
         (Count(FaultStatus::kDetected) + Count(FaultStatus::kRedundant)) /
         static_cast<double>(faults.size());
}

InputSequence AtpgResult::ConcatenatedTests() const {
  InputSequence all;
  for (const InputSequence& test : tests) {
    all.insert(all.end(), test.begin(), test.end());
  }
  return all;
}

AtpgResult RunAtpg(const netlist::Circuit& circuit,
                   const AtpgOptions& options) {
  RETEST_TRACE_SPAN(run_span, "atpg.run");
  RETEST_COUNTER_ADD("atpg.runs", "runs", "atpg", "RunAtpg invocations", 1);
  const Clock clock;
  Rng rng{options.seed};

  AtpgResult result;
  const fault::CollapsedFaults collapsed = fault::Collapse(circuit);
  result.faults = collapsed.representatives;
  result.status.assign(result.faults.size(), FaultStatus::kUntried);

  std::vector<size_t> remaining(result.faults.size());
  for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  auto drop_detected = [&](const InputSequence& sequence) -> int {
    std::vector<fault::Fault> targets;
    targets.reserve(remaining.size());
    for (size_t index : remaining) targets.push_back(result.faults[index]);
    const auto sim_result =
        faultsim::SimulateProofs(circuit, targets, sequence);
    result.evaluations +=
        sim_result.frames_evaluated * static_cast<long>(circuit.size());
    int newly = 0;
    std::vector<size_t> still;
    still.reserve(remaining.size());
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (sim_result.detections[i].detected) {
        result.status[remaining[i]] = FaultStatus::kDetected;
        ++newly;
      } else {
        still.push_back(remaining[i]);
      }
    }
    remaining = std::move(still);
    return newly;
  };

  // ---- Random phase ----
  {
    RETEST_TRACE_SPAN(random_span, "atpg.random_phase");
    const int sequence_length =
        options.random_length_factor * (circuit.num_dffs() + 4);
    int useless = 0;
    for (int round = 0; round < options.random_rounds; ++round) {
      if (remaining.empty() || useless >= options.random_patience ||
          clock.ElapsedMs() > options.time_budget_ms) {
        break;
      }
      InputSequence sequence =
          RandomSequence(rng, circuit.num_inputs(), sequence_length);
      RETEST_COUNTER_ADD("atpg.random.sequences", "sequences", "atpg",
                         "candidate sequences tried by the random phase", 1);
      const int newly = drop_detected(sequence);
      if (newly > 0) {
        RETEST_COUNTER_ADD("atpg.random.sequences_kept", "sequences", "atpg",
                           "random sequences kept (detected a new fault)",
                           1);
        RETEST_COUNTER_ADD("atpg.random.faults_dropped", "faults", "atpg",
                           "faults detected by the random phase", newly);
        result.tests.push_back(std::move(sequence));
        useless = 0;
      } else {
        ++useless;
      }
    }
  }

  // ---- Deterministic phase (fault-parallel; see parallel_driver.h) ----
  RunDeterministicPhase(circuit, options, remaining, clock.ElapsedMs(),
                        result);

  result.elapsed_ms = clock.ElapsedMs();
  return result;
}

}  // namespace retest::atpg
