#include "atpg/engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "atpg/journal.h"
#include "atpg/parallel_driver.h"
#include "atpg/rng.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/watchdog.h"
#include "faultsim/proofs.h"

namespace retest::atpg {
namespace {

using sim::InputSequence;
using sim::V3;

InputSequence RandomSequence(Rng& rng, int num_inputs, int length) {
  InputSequence sequence(static_cast<size_t>(length));
  for (auto& vector : sequence) {
    vector.resize(static_cast<size_t>(num_inputs));
    for (auto& v : vector) v = rng.Bit() ? V3::k1 : V3::k0;
  }
  return sequence;
}

class Clock {
 public:
  Clock() : start_(std::chrono::steady_clock::now()) {}
  long ElapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

int AtpgResult::Count(FaultStatus wanted) const {
  int count = 0;
  for (FaultStatus s : status) count += s == wanted ? 1 : 0;
  return count;
}

double AtpgResult::FaultCoverage() const {
  if (faults.empty()) return 100.0;
  return 100.0 * Count(FaultStatus::kDetected) /
         static_cast<double>(faults.size());
}

double AtpgResult::FaultEfficiency() const {
  if (faults.empty()) return 100.0;
  return 100.0 *
         (Count(FaultStatus::kDetected) + Count(FaultStatus::kRedundant)) /
         static_cast<double>(faults.size());
}

InputSequence AtpgResult::ConcatenatedTests() const {
  InputSequence all;
  for (const InputSequence& test : tests) {
    all.insert(all.end(), test.begin(), test.end());
  }
  return all;
}

AtpgResult RunAtpg(const netlist::Circuit& circuit,
                   const AtpgOptions& options) {
  RETEST_TRACE_SPAN(run_span, "atpg.run");
  RETEST_COUNTER_ADD("atpg.runs", "runs", "atpg", "RunAtpg invocations", 1);
  const Clock clock;
  Rng rng{options.seed};

  AtpgResult result;
  const fault::CollapsedFaults collapsed = fault::Collapse(circuit);
  result.faults = collapsed.representatives;
  result.status.assign(result.faults.size(), FaultStatus::kUntried);

  // ---- Budgets: a watchdog deadline simply caps the option budget,
  // so deadline preemption reuses the existing stop-flag machinery.
  core::WatchdogLimits requested;
  requested.deadline_ms = options.deadline_ms;
  requested.fault_timeout_ms = options.fault_timeout_ms;
  const core::WatchdogLimits limits = core::WatchdogLimits::Resolve(requested);
  long budget_ms = options.time_budget_ms;
  bool deadline_capped = false;
  if (limits.deadline_ms > 0 && limits.deadline_ms < budget_ms) {
    budget_ms = limits.deadline_ms;
    deadline_capped = true;
  }

  // ---- Checkpoint: load a prior journal if one matches this run.
  const bool checkpointing = !options.checkpoint_path.empty();
  std::uint32_t fingerprint = 0;
  std::optional<JournalContents> replay;
  if (checkpointing) {
    fingerprint = JournalFingerprint(circuit, options, result.faults.size());
    core::DiagnosticList load_diags;
    auto loaded = LoadJournal(options.checkpoint_path, load_diags);
    result.diagnostics.Append(load_diags);
    if (loaded) {
      if (loaded->fingerprint != fingerprint) {
        result.diagnostics.AddNote(
            core::StatusCode::kMismatch,
            "checkpoint journal was written by a different run "
            "configuration (circuit / seed / search options); starting "
            "fresh",
            options.checkpoint_path);
      } else {
        replay = std::move(loaded);
      }
    }
  }

  std::vector<size_t> remaining(result.faults.size());
  for (size_t i = 0; i < remaining.size(); ++i) remaining[i] = i;

  /// Fault-simulates `sequence` over the remaining universe, marks the
  /// detected faults, and returns their global indices.
  auto drop_detected =
      [&](const InputSequence& sequence) -> std::vector<size_t> {
    std::vector<fault::Fault> targets;
    targets.reserve(remaining.size());
    for (size_t index : remaining) targets.push_back(result.faults[index]);
    // The sweep stays off inside the ATPG loop: this runs once per
    // generated test, and re-analyzing the netlist each time would
    // outweigh the savings (detections are identical either way).
    faultsim::ProofsOptions sim_options;
    sim_options.sweep = analyze::SweepMode::kOff;
    const auto sim_result =
        faultsim::SimulateProofs(circuit, targets, sequence, sim_options);
    result.evaluations +=
        sim_result.frames_evaluated * static_cast<long>(circuit.size());
    std::vector<size_t> newly;
    std::vector<size_t> still;
    still.reserve(remaining.size());
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (sim_result.detections[i].detected) {
        result.status[remaining[i]] = FaultStatus::kDetected;
        newly.push_back(remaining[i]);
      } else {
        still.push_back(remaining[i]);
      }
    }
    remaining = std::move(still);
    return newly;
  };

  // ---- Checkpoint replay: validate the whole journal against this
  // run before applying anything, so a bad journal degrades to a
  // fresh run instead of a corrupted one.  The random phase replays
  // only when it completed un-preempted (otherwise rerunning it from
  // scratch is both correct and necessary); the commit prefix replays
  // up to the first kUntried commit -- the exact point where the
  // interrupted run stopped doing real work.
  bool replay_random = false;
  std::size_t resume_frontier = 0;
  std::vector<char> resume_retired;
  std::vector<JournalCommit> replay_commits;
  if (replay && replay->random_done && !replay->random_stopped) {
    bool valid = true;
    std::vector<char> detected(result.faults.size(), 0);
    for (const JournalRandomTest& record : replay->random_tests) {
      for (std::size_t index : record.detected) {
        if (index >= result.faults.size() || detected[index]) {
          valid = false;
          break;
        }
        detected[index] = 1;
      }
      for (const auto& vector : record.test) {
        if (vector.size() != static_cast<size_t>(circuit.num_inputs())) {
          valid = false;
        }
      }
      if (!valid) break;
    }
    std::size_t detected_count = 0;
    for (char d : detected) detected_count += d != 0 ? 1 : 0;
    if (valid &&
        result.faults.size() - detected_count != replay->remaining_count) {
      valid = false;
    }
    if (!valid) {
      result.diagnostics.AddNote(
          core::StatusCode::kCorruptData,
          "checkpoint journal failed replay validation; starting fresh",
          options.checkpoint_path);
    } else {
      replay_random = true;
    }
  }
  if (replay_random) {
    result.resumed = true;
    for (const JournalRandomTest& record : replay->random_tests) {
      for (std::size_t index : record.detected) {
        result.status[index] = FaultStatus::kDetected;
      }
      result.tests.push_back(record.test);
    }
    std::vector<size_t> still;
    still.reserve(replay->remaining_count);
    for (size_t i = 0; i < result.faults.size(); ++i) {
      if (result.status[i] != FaultStatus::kDetected) still.push_back(i);
    }
    remaining = std::move(still);
    result.evaluations = replay->random_evaluations;

    // Commit-prefix replay.  An inconsistent record simply ends the
    // prefix: everything from there on is re-searched, which is always
    // safe (per-fault searches are pure).
    resume_retired.assign(remaining.size(), 0);
    for (const JournalCommit& commit : replay->commits) {
      if (commit.pos != resume_frontier || commit.pos >= remaining.size()) {
        break;
      }
      if (commit.status == 'U') break;  // the interrupted run's edge
      if (commit.status == 'S') {
        if (!resume_retired[commit.pos]) break;
      } else {
        bool bad = false;
        if (commit.status == 'D') {
          if (commit.test.empty()) bad = true;
          for (const auto& vector : commit.test) {
            if (vector.size() != static_cast<size_t>(circuit.num_inputs())) {
              bad = true;
            }
          }
          for (std::size_t pos : commit.cross_retired) {
            if (pos <= commit.pos || pos >= remaining.size() ||
                resume_retired[pos]) {
              bad = true;
              break;
            }
          }
        }
        if (bad) break;
        FaultStatus status = FaultStatus::kUntried;
        switch (commit.status) {
          case 'D': status = FaultStatus::kDetected; break;
          case 'R': status = FaultStatus::kRedundant; break;
          case 'A': status = FaultStatus::kAborted; break;
          default: break;
        }
        result.status[remaining[commit.pos]] = status;
        result.evaluations += commit.evaluations;
        if (commit.status == 'D') {
          for (std::size_t pos : commit.cross_retired) {
            resume_retired[pos] = 1;
            result.status[remaining[pos]] = FaultStatus::kDetected;
          }
          result.tests.push_back(commit.test);
        }
      }
      replay_commits.push_back(commit);
      ++resume_frontier;
    }
    RETEST_COUNTER_ADD("atpg.checkpoint.commits_replayed", "commits", "atpg",
                       "deterministic commits restored from a checkpoint "
                       "journal instead of re-searched",
                       static_cast<long>(resume_frontier));
  }

  // ---- Checkpoint writer: rewrite the replayed prefix to a tmp file,
  // atomically rename it over the journal, then append live records.
  // A crash mid-rewrite leaves the previous journal intact.
  std::unique_ptr<JournalWriter> journal;
  if (checkpointing) {
    core::DiagnosticList open_diags;
    journal = JournalWriter::Open(options.checkpoint_path, open_diags);
    result.diagnostics.Append(open_diags);
    if (journal) {
      journal->WriteHeader(fingerprint, options.seed, result.faults.size(),
                           circuit.name());
      if (replay_random) {
        for (const JournalRandomTest& record : replay->random_tests) {
          journal->WriteRandomTest(record);
        }
        journal->WriteRandomDone(replay->random_rounds,
                                 replay->random_useless, /*stopped=*/false,
                                 remaining.size(),
                                 replay->random_evaluations);
        for (const JournalCommit& commit : replay_commits) {
          journal->WriteCommit(commit);
        }
      }
      journal->Activate(result.diagnostics);
      journal->Flush();
    }
  }

  // ---- Random phase ----
  if (!replay_random) {
    RETEST_TRACE_SPAN(random_span, "atpg.random_phase");
    const int sequence_length =
        options.random_length_factor * (circuit.num_dffs() + 4);
    int useless = 0;
    int rounds_done = 0;
    bool stopped = false;
    for (int round = 0; round < options.random_rounds; ++round) {
      if (remaining.empty() || useless >= options.random_patience) break;
      if (clock.ElapsedMs() > budget_ms ||
          (options.stop != nullptr &&
           options.stop->load(std::memory_order_relaxed))) {
        stopped = true;
        break;
      }
      InputSequence sequence =
          RandomSequence(rng, circuit.num_inputs(), sequence_length);
      RETEST_COUNTER_ADD("atpg.random.sequences", "sequences", "atpg",
                         "candidate sequences tried by the random phase", 1);
      const std::vector<size_t> newly = drop_detected(sequence);
      ++rounds_done;
      if (!newly.empty()) {
        RETEST_COUNTER_ADD("atpg.random.sequences_kept", "sequences", "atpg",
                           "random sequences kept (detected a new fault)",
                           1);
        RETEST_COUNTER_ADD("atpg.random.faults_dropped", "faults", "atpg",
                           "faults detected by the random phase",
                           static_cast<long>(newly.size()));
        if (journal) {
          JournalRandomTest record;
          record.detected = newly;
          record.test = sequence;
          journal->WriteRandomTest(record);
        }
        result.tests.push_back(std::move(sequence));
        useless = 0;
      } else {
        ++useless;
      }
    }
    if (stopped) result.preempted = true;
    if (journal) {
      journal->WriteRandomDone(rounds_done, useless, stopped,
                               remaining.size(), result.evaluations);
      journal->Flush();
    }
  }

  // ---- Deterministic phase (fault-parallel; see parallel_driver.h) ----
  DetPhaseControl control;
  control.resume_frontier = resume_frontier;
  control.resume_retired = std::move(resume_retired);
  control.journal = journal.get();
  control.fault_timeout_ms = limits.fault_timeout_ms;
  RunDeterministicPhase(circuit, options, remaining,
                        budget_ms - clock.ElapsedMs(), result, &control);

  if (result.preempted && deadline_capped) {
    result.diagnostics.AddNote(
        core::StatusCode::kDeadlineExceeded,
        "watchdog deadline preempted the run; unfinished faults were "
        "committed kUntried" +
            std::string(checkpointing ? " (resumable from the checkpoint)"
                                      : ""),
        "watchdog");
  }
  if (result.watchdog_preemptions > 0) {
    result.diagnostics.AddNote(
        core::StatusCode::kDeadlineExceeded,
        std::to_string(result.watchdog_preemptions) +
            " fault search(es) preempted by the per-fault timeout",
        "watchdog");
  }
  if (journal) {
    journal->WriteEnd(result.Count(FaultStatus::kDetected),
                      result.Count(FaultStatus::kRedundant),
                      result.Count(FaultStatus::kAborted),
                      result.Count(FaultStatus::kUntried));
    journal->Flush();
  }

  result.elapsed_ms = clock.ElapsedMs();
  return result;
}

}  // namespace retest::atpg
