#include "atpg/parallel_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <utility>

#include "atpg/journal.h"
#include "atpg/justify.h"
#include "atpg/podem.h"
#include "atpg/rng.h"
#include "atpg/unrolled.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "core/trace.h"
#include "core/watchdog.h"
#include "faultsim/proofs.h"

namespace retest::atpg {
namespace {

using sim::InputSequence;
using sim::V3;

void FillUnassigned(InputSequence& sequence, Rng& rng) {
  for (auto& vector : sequence) {
    for (auto& v : vector) {
      if (v == V3::kX) v = rng.Bit() ? V3::k1 : V3::k0;
    }
  }
}

/// The speculative result of one fault's deterministic search.
struct FaultOutcome {
  FaultStatus status = FaultStatus::kUntried;
  InputSequence test;     ///< Filled when status == kDetected.
  long evaluations = 0;   ///< Work this search performed.
};

/// One queue position's parking slot.  Exactly one worker writes
/// `outcome` and then publishes it with a release store to `ready`;
/// the committer's acquire load pairs with it, so the outcome is read
/// race-free without any lock on the workers' path.
struct Slot {
  std::atomic<bool> ready{false};
  FaultOutcome outcome;
};

/// Per-worker reusable models; constructed lazily on the worker's
/// first fault and re-armed with SetFault/GrowFrames afterwards.
struct WorkerModels {
  std::optional<UnrolledModel> redundancy;  // 1 frame, free + observed
  std::optional<UnrolledModel> search;      // style-dependent state mode
};

class Driver {
 public:
  Driver(const netlist::Circuit& circuit, const AtpgOptions& options,
         const std::vector<std::size_t>& remaining, long budget_ms,
         AtpgResult& result, const DetPhaseControl* control)
      : circuit_(circuit),
        options_(options),
        queue_(remaining),
        budget_ms_(budget_ms),
        result_(result),
        start_(std::chrono::steady_clock::now()),
        retired_(remaining.size()),
        slots_(remaining.size()) {
    max_frames_ = options.max_frames;
    if (max_frames_ <= 0) {
      max_frames_ = std::clamp(4 * circuit.num_dffs() + 8, 8, 64);
    }
    for (auto& flag : retired_) flag.store(0, std::memory_order_relaxed);
    if (control != nullptr) {
      journal_ = control->journal;
      fault_timeout_ms_ = control->fault_timeout_ms;
      frontier_ = std::min(control->resume_frontier, queue_.size());
      for (std::size_t pos = 0;
           pos < control->resume_retired.size() && pos < queue_.size();
           ++pos) {
        retired_[pos].store(control->resume_retired[pos],
                            std::memory_order_relaxed);
      }
    }
  }

  void Run() {
    const std::size_t base = frontier_;
    if (base >= queue_.size()) return;  // journal replay covered everything
    RETEST_TRACE_SPAN(phase_span, "atpg.deterministic_phase");
    RETEST_COUNTER_ADD("atpg.det.faults_dispatched", "faults", "atpg",
                       "faults entering the deterministic phase",
                       static_cast<long>(queue_.size() - base));
    const int threads = std::max(
        1, std::min<int>(core::ResolveThreadCount(options_.num_threads),
                         static_cast<int>(queue_.size() - base)));
    result_.threads_used = threads;
    std::vector<WorkerModels> models(static_cast<std::size_t>(threads));
    std::optional<core::Watchdog> watchdog;
    if (fault_timeout_ms_ > 0 || options_.stop != nullptr) {
      // Also constructed (with no limits) when an external cancel flag
      // is wired in: the monitor latches AtpgOptions::stop into the
      // per-worker flags, bounding cancel latency for in-flight
      // searches to one poll interval.
      core::WatchdogLimits limits;
      limits.fault_timeout_ms = fault_timeout_ms_;
      watchdog.emplace(limits, threads, &stop_, options_.stop);
    }
    core::ThreadPool pool(threads);
    pool.ParallelFor(queue_.size() - base, [&](int worker, std::size_t i) {
      const std::size_t item = base + i;
      // A racy-by-design optimization, exactly as racy as it always
      // was: whether a worker observes the retirement only decides
      // whether a speculative search is skipped; the committed result
      // is fixed at commit time either way.
      const bool claimed_retired =
          retired_[item].load(std::memory_order_relaxed) != 0;
      FaultOutcome outcome;  // kUntried: discarded or budget-preempted
      if (claimed_retired) {
        RETEST_COUNTER_ADD("atpg.det.faults_claimed_retired", "faults",
                           "atpg",
                           "faults already retired when a worker claimed "
                           "them (searches skipped)",
                           1);
      } else if (OutOfTime()) {
        RETEST_COUNTER_ADD("atpg.det.budget_preemptions", "faults", "atpg",
                           "faults preempted (kUntried) by the wall-clock "
                           "budget before their search started",
                           1);
      } else {
        RETEST_TRACE_SPAN(search_span, "atpg.fault_search");
        RETEST_SCOPED_TIMER(search_timer, "atpg.fault_search_ms", "atpg",
                            "wall time of one fault's deterministic search");
        const std::atomic<bool>* stop_flag = &stop_;
        if (watchdog) {
          watchdog->BeginItem(worker);
          stop_flag = watchdog->StopFlag(worker);
        }
        outcome = Search(result_.faults[queue_[item]],
                         FaultSeed(options_.seed, queue_[item]),
                         models[static_cast<std::size_t>(worker)], stop_flag);
        if (watchdog && watchdog->EndItem(worker)) {
          // Per-fault timeout: discard the partial search entirely so
          // the commit is a clean, re-searchable kUntried.
          outcome = FaultOutcome{};
        }
      }
      Park(item, std::move(outcome));
    });
    // A park can lose the drain race right at the end of the loop (its
    // try_lock fails while the holder has already scanned past it);
    // one blocking drain retires any such leftovers deterministically.
    DrainFrontier(/*blocking=*/true);
    if (stop_.load(std::memory_order_relaxed)) result_.preempted = true;
    if (watchdog) result_.watchdog_preemptions += watchdog->preemptions();
  }

 private:
  long ElapsedMs() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  /// Latches the stop flag once the budget is gone so every worker
  /// (and every in-flight PODEM via PodemOptions::stop) sees it.
  bool OutOfTime() {
    if (stop_.load(std::memory_order_relaxed)) return true;
    if (options_.stop != nullptr &&
        options_.stop->load(std::memory_order_relaxed)) {
      if (!stop_.exchange(true, std::memory_order_relaxed)) {
        RETEST_COUNTER_ADD("atpg.det.cancel_stops", "stops", "atpg",
                           "deterministic phases cut short by an external "
                           "cancel (AtpgOptions::stop)",
                           1);
      }
      return true;
    }
    if (ElapsedMs() > budget_ms_) {
      if (!stop_.exchange(true, std::memory_order_relaxed)) {
        RETEST_COUNTER_ADD("atpg.det.budget_stops", "stops", "atpg",
                           "deterministic phases cut short by the "
                           "wall-clock budget",
                           1);
      }
      return true;
    }
    return false;
  }

  /// Pure per-fault search: depends only on (circuit, fault, seed) and
  /// the option limits.  Budget preemption reports kUntried so a
  /// half-searched fault is never committed as a genuine abort.
  /// `stop` is this worker's cooperative-preemption flag: the shared
  /// budget flag, or a watchdog per-worker flag that additionally
  /// fires on the per-fault timeout.
  FaultOutcome Search(const fault::Fault& fault, std::uint64_t seed,
                      WorkerModels& models, const std::atomic<bool>* stop) {
    FaultOutcome out;
    Rng rng{seed};
    out.status = FaultStatus::kAborted;

    // Redundancy proof: one frame, free and observed state.
    if (options_.redundancy_check) {
      if (models.redundancy && options_.reuse_models) {
        models.redundancy->SetFault(fault);
      } else {
        models.redundancy.emplace(circuit_, fault, 1, /*free_state=*/true,
                                  /*observe_state=*/true);
      }
      PodemOptions podem_options;
      podem_options.max_backtracks = options_.backtracks_per_fault * 8;
      podem_options.max_evaluations = options_.evaluations_per_fault;
      podem_options.stop = stop;
      const PodemResult proof = RunPodem(*models.redundancy, podem_options);
      out.evaluations += proof.evaluations;
      if (proof.status == PodemStatus::kExhausted) {
        out.status = FaultStatus::kRedundant;
        return out;
      }
    }

    const bool free_state = options_.style == AtpgStyle::kJustification;
    for (int frames = 1; frames <= max_frames_; frames *= 2) {
      if (OutOfTime() || stop->load(std::memory_order_relaxed)) {
        out.status = FaultStatus::kUntried;
        return out;
      }
      if (!models.search || !options_.reuse_models) {
        models.search.emplace(circuit_, fault, frames, free_state);
      } else if (frames == 1) {
        models.search->SetFault(fault, 1);
      } else {
        models.search->GrowFrames(frames);
      }
      UnrolledModel& model = *models.search;
      PodemOptions podem_options;
      podem_options.max_backtracks = options_.backtracks_per_fault;
      podem_options.max_evaluations = options_.evaluations_per_fault;
      podem_options.stop = stop;
      const PodemResult search = RunPodem(model, podem_options);
      out.evaluations += search.evaluations;
      if (stop->load(std::memory_order_relaxed)) {
        out.status = FaultStatus::kUntried;  // stop-induced abort
        return out;
      }
      if (options_.style == AtpgStyle::kForwardIla) {
        if (search.status != PodemStatus::kFound) continue;
        // Unassigned inputs: fill with random binary values (cannot
        // lose the detection; it only refines X).
        out.test = model.InputSequence();
        FillUnassigned(out.test, rng);
        out.status = FaultStatus::kDetected;
        return out;
      }
      // HITEC-style: backward-justify the state the combinational test
      // requires, then verify by fault simulation.
      if (search.status != PodemStatus::kFound) continue;
      JustifyOptions justify_options;
      justify_options.max_depth = options_.justify_max_depth;
      justify_options.max_backtracks = options_.justify_backtracks;
      justify_options.stop = stop;
      const JustifyResult justified = JustifyState(
          circuit_, model.StateAssignments(), justify_options, fault);
      out.evaluations += justified.evaluations;
      RETEST_COUNTER_ADD("atpg.justify.calls", "calls", "atpg",
                         "backward state-justification attempts", 1);
      if (justified.status == JustifyStatus::kJustified) {
        RETEST_COUNTER_ADD("atpg.justify.justified", "calls", "atpg",
                           "justification attempts that found a state "
                           "sequence",
                           1);
      }
      if (justified.status != JustifyStatus::kJustified) continue;

      InputSequence candidate = justified.sequence;
      for (const auto& vector : model.InputSequence()) {
        candidate.push_back(vector);
      }
      FillUnassigned(candidate, rng);
      // Verify by fault simulation (HITEC does the same) on the
      // cone-restricted PROOFS engine; single fault, so batching, site
      // sorting and wide lanes buy nothing — pin the 64-lane kernel
      // rather than paying a 512-lane frame for one machine.
      faultsim::ProofsOptions proofs;
      proofs.num_threads = 1;
      proofs.sort_faults = false;
      proofs.lane_words = 1;
      // Single tiny run: re-analyzing the netlist per candidate would
      // dwarf the simulation, so the sweep stays off here regardless
      // of REPRO_SWEEP (results are identical either way).
      proofs.sweep = analyze::SweepMode::kOff;
      const auto verdict =
          faultsim::SimulateProofs(circuit_, std::span(&fault, 1), candidate,
                                   proofs);
      out.evaluations += verdict.frames_evaluated *
                         static_cast<long>(circuit_.size());
      if (!verdict.detections[0].detected) continue;
      out.status = FaultStatus::kDetected;
      out.test = std::move(candidate);
      return out;
    }
    return out;
  }

  /// Parks a speculative result and opportunistically services the
  /// commit frontier.  Parking itself is lock-free (a release store
  /// into this position's slot); the frontier is then drained by
  /// whichever single worker wins a try_lock, so the expensive commit
  /// work -- cross-worker retirement fault simulation and journal
  /// writes -- never blocks the other workers' searches.  This is the
  /// fix for the PR-2 scaling collapse, where every worker parked
  /// through one mutex that the retirement simulation was held under.
  void Park(std::size_t item, FaultOutcome outcome) {
    RETEST_SCOPED_TIMER(wait_timer, "atpg.frontier.wait_ms", "atpg",
                        "time a worker spends publishing a result and "
                        "servicing the commit frontier instead of searching");
    Slot& slot = slots_[item];
    slot.outcome = std::move(outcome);
    slot.ready.store(true, std::memory_order_seq_cst);
    DrainFrontier(/*blocking=*/false);
  }

  /// Advances the commit frontier over every contiguous ready slot.
  /// Single-committer: commits happen strictly in queue order under
  /// commit_mutex_, so the retirement state each commit observes is a
  /// pure function of the commit prefix -- bit-identical results at
  /// any thread count.  The journal (when enabled) is flushed once per
  /// drain batch, off the workers' search path, instead of once per
  /// frontier advance; a crash loses at most the unflushed tail, which
  /// journal replay already tolerates.
  ///
  /// Non-blocking callers that lose the try_lock return immediately --
  /// the lock holder will scan their slot, or, if it raced past, the
  /// post-unlock recheck (or the final blocking drain in Run) picks it
  /// up.  The seq_cst store in Park and the seq_cst recheck load below
  /// guarantee at least one of the two parties sees the other.
  void DrainFrontier(bool blocking) {
    for (;;) {
      std::unique_lock<std::mutex> lock(commit_mutex_, std::defer_lock);
      if (blocking) {
        lock.lock();
      } else if (!lock.try_lock()) {
        return;
      }
      std::size_t advanced = 0;
      while (frontier_ < queue_.size() &&
             slots_[frontier_].ready.load(std::memory_order_acquire)) {
        Commit(frontier_);
        ++frontier_;
        ++advanced;
      }
      if (journal_ != nullptr && advanced > 0) {
        journal_->Flush();
        RETEST_COUNTER_ADD("atpg.checkpoint.flushes", "flushes", "atpg",
                           "checkpoint journal flushes at the commit "
                           "frontier (one per drain batch)",
                           1);
      }
      const std::size_t next = frontier_;
      lock.unlock();
      if (next >= queue_.size()) return;
      if (!slots_[next].ready.load(std::memory_order_seq_cst)) return;
      blocking = false;  // someone parked `next` while we held the lock
    }
  }

  /// Applies outcome `pos` in fault order (commit_mutex_ held).  A
  /// fault retired by an earlier committed test keeps its kDetected
  /// status and its speculative result is discarded -- the serial
  /// semantics of never searching an already-detected fault.
  void Commit(std::size_t pos) {
    FaultOutcome& outcome = slots_[pos].outcome;
    if (retired_[pos].load(std::memory_order_relaxed) != 0) {
      RETEST_COUNTER_ADD("atpg.det.speculation_discarded", "faults", "atpg",
                         "speculative results discarded at commit because "
                         "an earlier test already retired the fault",
                         1);
      outcome.test.clear();
      if (journal_ != nullptr) {
        JournalCommit record;
        record.pos = pos;
        record.status = 'S';
        journal_->WriteCommit(record);
      }
      return;
    }
    const std::size_t fault_index = queue_[pos];
    result_.status[fault_index] = outcome.status;
    result_.evaluations += outcome.evaluations;
    long committed_evaluations = outcome.evaluations;
    std::vector<std::size_t> cross;
    if (outcome.status == FaultStatus::kDetected) {
      // The generated sequence usually catches more faults: retire
      // them from the live pending universe beyond the frontier.
      std::vector<fault::Fault> targets;
      std::vector<std::size_t> positions;
      targets.reserve(queue_.size() - pos);
      for (std::size_t j = pos + 1; j < queue_.size(); ++j) {
        if (retired_[j].load(std::memory_order_relaxed) != 0) continue;
        targets.push_back(result_.faults[queue_[j]]);
        positions.push_back(j);
      }
      if (!targets.empty()) {
        faultsim::ProofsOptions proofs;
        proofs.num_threads = 1;  // workers already saturate the pool
        proofs.sweep = analyze::SweepMode::kOff;  // per-commit call: the
        // re-analysis would cost more than it saves (same results).
        const auto sim =
            faultsim::SimulateProofs(circuit_, targets, outcome.test, proofs);
        const long sim_evaluations =
            sim.frames_evaluated * static_cast<long>(circuit_.size());
        result_.evaluations += sim_evaluations;
        committed_evaluations += sim_evaluations;
        for (std::size_t k = 0; k < positions.size(); ++k) {
          if (!sim.detections[k].detected) continue;
          retired_[positions[k]].store(1, std::memory_order_relaxed);
          result_.status[queue_[positions[k]]] = FaultStatus::kDetected;
          cross.push_back(positions[k]);
        }
        RETEST_COUNTER_ADD("atpg.det.faults_cross_retired", "faults", "atpg",
                           "pending faults retired by another fault's "
                           "committed test",
                           static_cast<long>(cross.size()));
      }
      RETEST_COUNTER_ADD("atpg.det.tests_committed", "tests", "atpg",
                         "tests committed by the deterministic phase", 1);
    }
    if (journal_ != nullptr) {
      JournalCommit record;
      record.pos = pos;
      record.status = StatusChar(outcome.status);
      record.evaluations = committed_evaluations;
      record.cross_retired = cross;
      if (outcome.status == FaultStatus::kDetected) {
        record.test = outcome.test;
      }
      journal_->WriteCommit(record);
    }
    if (outcome.status == FaultStatus::kDetected) {
      result_.tests.push_back(std::move(outcome.test));
    }
  }

  static char StatusChar(FaultStatus status) {
    switch (status) {
      case FaultStatus::kDetected: return 'D';
      case FaultStatus::kRedundant: return 'R';
      case FaultStatus::kAborted: return 'A';
      case FaultStatus::kUntried: return 'U';
    }
    return 'U';
  }

  const netlist::Circuit& circuit_;
  const AtpgOptions& options_;
  const std::vector<std::size_t>& queue_;
  const long budget_ms_;
  AtpgResult& result_;
  const std::chrono::steady_clock::time_point start_;
  int max_frames_ = 0;
  JournalWriter* journal_ = nullptr;
  long fault_timeout_ms_ = 0;

  std::atomic<bool> stop_{false};
  /// Retirement flags by queue position.  Written only by the single
  /// committer (under commit_mutex_); read lock-free by claiming
  /// workers as a skip-the-search hint.  Monotonic 0 -> 1.
  std::vector<std::atomic<std::uint8_t>> retired_;
  std::vector<Slot> slots_;
  /// Serializes commit draining; never held while parking or
  /// searching.  frontier_ is only touched with it held.
  std::mutex commit_mutex_;
  std::size_t frontier_ = 0;
};

}  // namespace

void RunDeterministicPhase(const netlist::Circuit& circuit,
                           const AtpgOptions& options,
                           const std::vector<std::size_t>& remaining,
                           long budget_ms, AtpgResult& result,
                           const DetPhaseControl* control) {
  Driver driver(circuit, options, remaining, budget_ms, result, control);
  driver.Run();
}

}  // namespace retest::atpg
