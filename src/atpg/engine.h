// The sequential ATPG driver (HITEC stand-in).
//
// Pipeline: equivalence-collapse the fault universe; a random phase
// (random sequences kept when they detect new faults, PROOFS-style
// dropping); then deterministic PODEM per remaining fault over an
// adaptively deepened unrolled model, with a combinational-redundancy
// proof (1 frame, free + observed state) identifying untestable faults.
// Every knob that the paper's Table II budget story depends on (time
// budget, backtrack limits, frame caps) is explicit in AtpgOptions.
//
// The deterministic phase is fault-parallel: remaining faults are
// dispatched across a core::ThreadPool, each worker reuses one set of
// unrolled models (SetFault/GrowFrames instead of reconstruction), and
// every found test is fault-simulated against the still-pending
// universe so one worker's test retires other workers' queued faults.
// Results commit in fault order with per-fault seeded RNGs, so the
// detected/redundant/aborted sets, the test list and the evaluation
// counters are identical for a given seed at any thread count (see
// parallel_driver.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "fault/collapse.h"
#include "fault/fault.h"
#include "sim/simulator.h"

namespace retest::atpg {

/// Deterministic-search architecture.
enum class AtpgStyle {
  /// Forward search over the unrolled array with a pinned unknown
  /// initial state (tests are correct by construction).
  kForwardIla,
  /// HITEC-style: combinational test with a free state, then backward
  /// state justification, then fault-simulation verification.  This is
  /// the architecture whose cost explodes on retimed circuits
  /// (Table II).
  kJustification,
};

/// ATPG configuration.
struct AtpgOptions {
  std::uint64_t seed = 1;
  AtpgStyle style = AtpgStyle::kForwardIla;
  /// kJustification: backward-justification limits per fault.
  int justify_max_depth = 24;
  long justify_backtracks = 4000;
  /// Random-phase: number of candidate sequences and their length in
  /// multiples of (#DFF + 4); the phase ends early after
  /// `random_patience` consecutive useless sequences.
  int random_rounds = 64;
  int random_length_factor = 4;
  int random_patience = 8;
  /// Deterministic-phase: unrolled depth starts at 1 and doubles up to
  /// max_frames (0 = auto: 4 * #DFF + 8, clamped to [8, 64]).
  int max_frames = 0;
  long backtracks_per_fault = 2000;
  long evaluations_per_fault = 5'000'000;
  /// Overall wall-clock budget in milliseconds (the paper's #CPU role).
  long time_budget_ms = 10'000;
  /// Attempt the combinational-redundancy proof per aborted fault.
  bool redundancy_check = true;
  /// Worker threads for the deterministic phase.  <= 0 means
  /// core::ResolveThreadCount's default (the REPRO_THREADS env var
  /// when set, else hardware concurrency).  The result is identical at
  /// any thread count for a given seed (only wall clock changes),
  /// except when the time budget cuts the run short.
  int num_threads = 0;
  /// Reuse per-worker unrolled models across faults and depths
  /// (SetFault/GrowFrames) instead of reconstructing each one.  Always
  /// produces identical results; exists as an ablation knob for
  /// bench_atpg_perf to measure the reconstruction cost.
  bool reuse_models = true;
  /// Crash-safe checkpoint journal (atpg/journal).  Empty = disabled.
  /// When set, every random-phase test and every deterministic commit
  /// is appended (CRC-guarded, flushed at the commit frontier); a
  /// matching journal found at the path on startup is replayed, so a
  /// killed run resumes from its last committed fault and still lands
  /// on the bit-identical result of an uninterrupted run, at any
  /// thread count.
  std::string checkpoint_path;
  /// Watchdog budgets (core/watchdog): whole-run deadline and
  /// per-fault search timeout, both in milliseconds, 0 = take the
  /// REPRO_DEADLINE_MS / REPRO_FAULT_TIMEOUT_MS env vars (which are in
  /// turn 0 = disabled).  Overruns convert cleanly to kUntried commits
  /// (resumable); they never corrupt committed results.
  long deadline_ms = 0;
  long fault_timeout_ms = 0;
  /// External cooperative-cancel flag (not owned; may be null).  When
  /// it turns true mid-run the engine preempts exactly like a
  /// wall-clock budget expiry: in-flight searches abort, unfinished
  /// faults commit as kUntried (journal-resumable), and the result
  /// reports preempted.  The fleet wires JobContext::stop in here so a
  /// per-job Cancel interrupts a running ATPG job; the watchdog
  /// monitor latches it into the per-worker stop flags within ~10 ms.
  /// Not part of the journal fingerprint: a resumed run may pass a
  /// different pointer and still land on the bit-identical result.
  const std::atomic<bool>* stop = nullptr;
};

/// Per-fault outcome.
enum class FaultStatus : std::uint8_t {
  kDetected,
  kRedundant,  ///< Proven untestable (counts toward fault efficiency).
  kAborted,    ///< Search gave up within its limits.
  kUntried,    ///< Time budget exhausted before this fault was tried.
};

/// Everything the Table II columns need.
struct AtpgResult {
  /// The collapsed fault list targeted (representatives).
  std::vector<fault::Fault> faults;
  std::vector<FaultStatus> status;
  /// Generated tests, in generation order; the full test set is their
  /// concatenation.
  std::vector<sim::InputSequence> tests;
  long evaluations = 0;  ///< Deterministic work measure.
  long elapsed_ms = 0;   ///< Wall clock (#CPU column analogue).
  int threads_used = 1;  ///< Deterministic-phase workers actually used.
  /// True when the wall-clock budget / deadline cut the run short
  /// (some faults committed kUntried without being searched).
  bool preempted = false;
  /// True when a checkpoint journal was replayed into this run.
  bool resumed = false;
  /// Per-fault watchdog timeouts that converted searches to kUntried.
  long watchdog_preemptions = 0;
  /// Non-fatal events of this run: checkpoint corruption/mismatch
  /// notes, journal I/O errors, deadline notices.  Never contains
  /// errors about the circuit itself (RunAtpg assumes a checked
  /// circuit).
  core::DiagnosticList diagnostics;

  int Count(FaultStatus wanted) const;
  /// %FC: detected / total.
  double FaultCoverage() const;
  /// %FE: (detected + redundant) / total.
  double FaultEfficiency() const;
  /// All test vectors back to back (the stream the paper fault
  /// simulates).
  sim::InputSequence ConcatenatedTests() const;
};

/// Runs the ATPG on a circuit.
AtpgResult RunAtpg(const netlist::Circuit& circuit,
                   const AtpgOptions& options = {});

}  // namespace retest::atpg
