// Crash-safe checkpoint journal for the ATPG pipeline.
//
// RunAtpg with AtpgOptions::checkpoint_path set appends every durable
// event of a run — the header fingerprint, each random-phase test that
// was kept, the random-phase summary, and every fault-ordered commit
// of the deterministic phase — to a line-oriented journal file.  Every
// line carries a CRC-32 of its body (core/crc32), so truncation and
// bit rot are detected before a record is trusted; the writer flushes
// at the deterministic phase's commit frontier, the natural
// consistency point (atpg/parallel_driver).
//
// Resume contract: a journal is replayed only when its fingerprint
// (circuit structure + seed + every search-relevant option) matches
// the current run.  Replay applies the random-phase records, then the
// longest prefix of commit records up to the first kUntried commit —
// a kUntried commit marks budget/watchdog preemption, i.e. exactly
// where the interrupted run stopped doing real work.  Because each
// fault's search is a pure function of (circuit, fault, seed), the
// resumed run re-searches the remaining suffix and lands on the same
// final test set as an uninterrupted run, bit for bit, at any thread
// count.  A torn final line (a write cut mid-record by the crash) is
// dropped with a note; a CRC mismatch on a *complete* line means the
// file is corrupt and the journal is rejected with a diagnostic.
//
// Record grammar (one record per line, "body|crc32hex"):
//   J1 <fp-hex8> <seed> <num-faults> <circuit-name>
//   T <n> <fault-idx x n> <sequence>          random-phase kept test
//   R <rounds> <useless> <stopped01> <remaining> <evaluations>
//   C <pos> <D|R|A|U|S> <evals> <ncross> <pos x ncross> [<sequence>]
//   E <detected> <redundant> <aborted> <untried>
// Sequences encode one vector per comma-separated group of 0/1/x
// characters ('-' for a zero-input circuit's empty vector).
// See docs/ROBUSTNESS.md for the full format and workflow.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/engine.h"
#include "core/status.h"

namespace retest::atpg {

/// One kept random-phase sequence and the faults it newly detected
/// (global indices into AtpgResult::faults).
struct JournalRandomTest {
  std::vector<std::size_t> detected;
  sim::InputSequence test;
};

/// One deterministic-phase commit, in frontier order.  `pos` indexes
/// the post-random-phase remaining queue; `cross_retired` lists the
/// later queue positions this commit's test retired.
struct JournalCommit {
  std::size_t pos = 0;
  char status = 'U';  ///< D(etected) R(edundant) A(borted) U(ntried) S(kipped)
  long evaluations = 0;
  std::vector<std::size_t> cross_retired;
  sim::InputSequence test;  ///< Present exactly when status == 'D'.
};

/// Everything a journal file holds.
struct JournalContents {
  std::uint32_t fingerprint = 0;
  std::uint64_t seed = 0;
  std::size_t num_faults = 0;
  std::string circuit_name;

  std::vector<JournalRandomTest> random_tests;
  bool random_done = false;
  int random_rounds = 0;
  int random_useless = 0;
  bool random_stopped = false;       ///< Random phase cut by the budget.
  std::size_t remaining_count = 0;   ///< Queue size entering the det phase.
  long random_evaluations = 0;       ///< result.evaluations after random.

  std::vector<JournalCommit> commits;
  bool complete = false;  ///< End record present (clean shutdown).
};

/// Fingerprint of everything the search outcome depends on: circuit
/// structure, seed, style and every per-fault limit (thread count,
/// budgets and checkpoint settings deliberately excluded — they never
/// change committed results, only how far a run gets).
std::uint32_t JournalFingerprint(const netlist::Circuit& circuit,
                                 const AtpgOptions& options,
                                 std::size_t num_faults);

/// Loads a journal.  Returns nullopt when `path` does not exist (a
/// normal first run — no diagnostic) or when the file is corrupt (CRC
/// mismatch / malformed record — StatusCode::kCorruptData diagnostic).
/// A torn final line is dropped with a note and the intact prefix is
/// returned.
std::optional<JournalContents> LoadJournal(const std::string& path,
                                           core::DiagnosticList& diags);

/// Appending journal writer.  Records are written to "<path>.tmp"
/// until Activate() renames it over `path` — so a half-rewritten
/// resume never clobbers the previous journal, and after Activate the
/// same handle keeps appending to the real file.  All methods are
/// cheap (buffered stdio); Flush() is the durability point the driver
/// calls at each commit-frontier advance.
class JournalWriter {
 public:
  /// Opens "<path>.tmp" for writing; nullptr + kIoError diagnostic on
  /// failure.
  static std::unique_ptr<JournalWriter> Open(const std::string& path,
                                             core::DiagnosticList& diags);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  void WriteHeader(std::uint32_t fingerprint, std::uint64_t seed,
                   std::size_t num_faults, const std::string& circuit_name);
  void WriteRandomTest(const JournalRandomTest& record);
  void WriteRandomDone(int rounds, int useless, bool stopped,
                       std::size_t remaining, long evaluations);
  void WriteCommit(const JournalCommit& record);
  void WriteEnd(int detected, int redundant, int aborted, int untried);

  /// Renames "<path>.tmp" over `path`; reports failure once via
  /// `diags` (the writer keeps appending to the tmp file regardless).
  /// Durability order: the tmp file is fsync'd before the rename and
  /// the parent directory after it, so the activated name can never
  /// refer to records still in the page cache and the rename itself
  /// survives a power cut (counter: atpg.journal.fsync).
  bool Activate(core::DiagnosticList& diags);

  /// Flushes buffered records to the OS (fflush; crash-of-process
  /// safe, not crash-of-kernel durable).
  void Flush();

 private:
  JournalWriter(std::FILE* file, std::string path);
  void WriteLine(const std::string& body);

  std::FILE* file_;
  std::string path_;
  bool activated_ = false;
  /// Chaos (atpg.journal.torn_write): a torn write leaves a record
  /// prefix on disk and silences the writer — the in-memory run is
  /// unaffected, but the file freezes in its crash-shaped state.
  bool torn_ = false;
};

}  // namespace retest::atpg
