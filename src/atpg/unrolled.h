// Iterative-logic-array (time-frame-expanded) circuit model for
// sequential test generation.
//
// The sequential circuit is unrolled for a number of frames; the
// fault is injected in every frame; frame-0 DFF outputs carry the
// unknown initial state (uncontrollable X) unless the model is put in
// `free_state` mode, where they become pseudo-primary inputs (used for
// the combinational-redundancy proof).  Assignments live on the frame
// PIs; value updates are event-driven (only the affected cone is
// re-evaluated), and the model incrementally tracks everything PODEM
// polls every decision: fault-effect sites, primary-output effects and
// excitation frames.
//
// The model is reusable: SetFault re-arms it for another fault of the
// same circuit and GrowFrames changes the unroll depth, both reusing
// the levelization, the static controllability tables and every buffer
// (capacity is kept at its high-water mark), so a fault-parallel ATPG
// driver pays the construction cost once per worker instead of once
// per (fault, depth).
#pragma once

#include <set>
#include <vector>

#include "fault/fault.h"
#include "atpg/val5.h"
#include "sim/levelizer.h"

namespace retest::atpg {

/// Identifies a primary input of a specific time frame.
struct FramePi {
  int frame = 0;
  int pi = 0;  ///< Index into Circuit::inputs().

  friend bool operator==(const FramePi&, const FramePi&) = default;
};

/// Identifies any node of a specific time frame.
struct FrameNode {
  int frame = 0;
  netlist::NodeId node = netlist::kNoNode;

  friend bool operator==(const FrameNode&, const FrameNode&) = default;
  friend auto operator<=>(const FrameNode&, const FrameNode&) = default;
};

class UnrolledModel {
 public:
  /// Builds a model with `frames` copies of `circuit` and `fault`
  /// injected in each.  `free_state` makes frame-0 DFF outputs
  /// assignable (pseudo-PIs) instead of pinned to X.  `observe_state`
  /// additionally treats the DFF data inputs of every frame as
  /// observation points (pseudo-primary outputs), which is what the
  /// combinational-redundancy proof needs.
  UnrolledModel(const netlist::Circuit& circuit, const fault::Fault& fault,
                int frames, bool free_state = false,
                bool observe_state = false);

  const netlist::Circuit& circuit() const { return *circuit_; }
  const fault::Fault& fault() const { return fault_; }
  int frames() const { return frames_; }
  bool free_state() const { return free_state_; }

  /// Clears every PI/state assignment back to X and re-derives all
  /// values and bookkeeping.  No allocation: restores the cached
  /// fault-free all-X baseline wholesale and re-evaluates only the
  /// injected fault's downstream cone, so re-arming costs O(values
  /// restored + cone) instead of a full Evaluate.
  void Reset();

  /// Re-arms the model for a different fault of the same circuit (and,
  /// when `frames` > 0, a different unroll depth) and Resets.  Reuses
  /// the levelization, static tables and value buffers; equivalent to
  /// constructing a fresh model with the same parameters.
  void SetFault(const fault::Fault& fault, int frames = 0);

  /// Changes the unroll depth (keeping the fault) and Resets.  Buffer
  /// capacity and the static controllability tables only ever grow
  /// (high-water mark), so a doubling search loop that later shrinks
  /// back to 1 frame for the next fault never re-allocates.
  void GrowFrames(int frames);

  /// Sets/clears a PI assignment (3-valued, applied to both machines)
  /// and propagates the change through the affected cone.
  void AssignPi(const FramePi& pi, sim::V3 value);
  sim::V3 PiValue(const FramePi& pi) const;

  /// Pseudo-PI (frame-0 state) assignment; requires free_state mode.
  void AssignState(int dff_index, sim::V3 value);

  /// Current frame-0 state assignments (free_state mode): the state
  /// cube a justification-based engine must realize.
  const std::vector<sim::V3>& StateAssignments() const {
    return state_assignments_;
  }

  /// Total node evaluations performed so far (work accounting).
  long evaluations() const { return evaluations_; }

  /// Value on a node in a frame.
  const V5& value(const FrameNode& node) const {
    return values_[index(node.frame, node.node)];
  }

  /// The value latched by DFF `dff_index` at the end of frame `t`
  /// (includes a fault on the DFF's data pin).
  V5 LatchedValue(int t, int dff_index) const;

  /// True when some (pseudo-)PO in some frame shows a fault effect.
  bool FaultObserved() const { return observed_count_ > 0; }

  /// True when the fault site is excited in some frame (the good value
  /// at the site differs from the stuck value).
  bool FaultExcited() const { return excited_count_ > 0; }

  /// Frames in which the fault site's good value is still unknown
  /// (activation candidates).
  std::vector<int> ActivationFrames() const;

  /// Gates on the D-frontier: output has an unknown component and at
  /// least one input carries a fault effect.  Derived from the
  /// incrementally-maintained set of fault-effect sites.
  std::vector<FrameNode> DFrontier() const;

  /// True when node (frame, id) has at least one assignable input
  /// (a real PI, or a frame-0 state bit in free_state mode) in its
  /// transitive fanin cone -- i.e. backtracing from it can reach a
  /// decision point.
  bool Controllable(const FrameNode& node) const {
    return controllable_[index(node.frame, node.node)] != 0;
  }

  /// True when a *real* primary input (not a frame-0 state bit) lies in
  /// the node's cone.  Backtracing prefers such paths so free-state
  /// searches assign as few state bits as possible (cheaper
  /// justification).
  bool PiReachable(const FrameNode& node) const {
    return pi_reachable_[index(node.frame, node.node)] != 0;
  }

  /// The 3-valued input sequence currently assigned (X where
  /// unassigned); one vector per frame.  This is the test when the
  /// search succeeds.
  std::vector<std::vector<sim::V3>> InputSequence() const {
    return {assignments_.begin(),
            assignments_.begin() + static_cast<long>(frames_)};
  }

  /// Full from-scratch re-evaluation; used by tests to cross-check the
  /// incremental engine.  Returns the number of node evaluations.
  long Evaluate();

 private:
  size_t index(int frame, netlist::NodeId node) const {
    return static_cast<size_t>(frame) * static_cast<size_t>(circuit_->size()) +
           static_cast<size_t>(node);
  }

  /// The net whose good value excites `fault` (the branch's driver for
  /// pin faults, the node itself for stem faults).
  netlist::NodeId ObserveNodeFor(const fault::Fault& fault) const;

  /// Grows every frame-major buffer and extends the static
  /// controllability/PI-reachability tables and the fault-free
  /// baseline up to `frames` (no-op for frames already built).
  void EnsureCapacity(int frames);

  /// Fault-free good value of (t, id) under all-X inputs/state,
  /// reading previously computed entries of `baseline_`.
  sim::V3 BaselineGood(int t, netlist::NodeId id) const;

  /// Recomputes the value of (t, id) from its fanins and the fault
  /// injection; returns the new value.
  V5 Compute(int t, netlist::NodeId id) const;

  /// Installs a freshly computed value, updating the effect/excitation
  /// bookkeeping; returns true when the value changed.
  bool Install(int t, netlist::NodeId id, const V5& value);

  /// Schedules (t, id) for recomputation.
  void Touch(int t, netlist::NodeId id);

  /// Drains the event queue in (frame, level) order.
  void Propagate();

  /// Re-derives the pseudo-output observation for DFF `dff_index` at
  /// frame t (observe_state mode).
  void UpdateLatchedObservation(int t, int dff_index);

  const netlist::Circuit* circuit_;
  fault::Fault fault_;
  int frames_;
  int frames_built_ = 0;  ///< Capacity high-water mark (>= frames_).
  bool free_state_;
  bool observe_state_;
  sim::Levelization levels_;
  /// The net whose good value excites the fault (the branch's driver
  /// for pin faults, the node itself for stem faults).
  netlist::NodeId observe_node_ = netlist::kNoNode;

  std::vector<std::vector<sim::V3>> assignments_;
  std::vector<sim::V3> state_assignments_;
  std::vector<V5> values_;        // [frame * size + node]
  /// Fault-free evaluation under all-X inputs and state (good ==
  /// faulty everywhere); the restore image Reset starts from.
  std::vector<V5> baseline_;
  std::vector<char> controllable_;
  std::vector<char> pi_reachable_;

  // Event queue: monotone bucket queue keyed by frame * (depth+2) +
  // level (processing a node only ever schedules larger keys), with a
  // dedup bitmap.
  std::vector<std::vector<netlist::NodeId>> buckets_;
  std::vector<char> queued_;
  size_t queue_cursor_ = 0;
  size_t queue_pending_ = 0;

  // Incremental bookkeeping.
  std::set<FrameNode> effect_nodes_;     // nodes carrying D/D'
  std::vector<char> latched_effect_;     // [frame * dffs + i], observe_state
  int observed_count_ = 0;               // (pseudo-)PO effect positions
  std::vector<char> excited_;            // per frame
  int excited_count_ = 0;
  long evaluations_ = 0;
};

}  // namespace retest::atpg
