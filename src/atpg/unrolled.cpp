#include "atpg/unrolled.h"

#include <algorithm>
#include <stdexcept>

#include "core/metrics.h"

namespace retest::atpg {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;
using sim::V3;

UnrolledModel::UnrolledModel(const netlist::Circuit& circuit,
                             const fault::Fault& fault, int frames,
                             bool free_state, bool observe_state)
    : circuit_(&circuit),
      fault_(fault),
      frames_(frames),
      free_state_(free_state),
      observe_state_(observe_state),
      levels_(sim::Levelize(circuit)) {
  if (frames <= 0) throw std::invalid_argument("UnrolledModel: frames <= 0");
  observe_node_ = ObserveNodeFor(fault_);
  state_assignments_.assign(static_cast<size_t>(circuit.num_dffs()), V3::kX);
  EnsureCapacity(frames);
  Reset();
}

netlist::NodeId UnrolledModel::ObserveNodeFor(const fault::Fault& fault) const {
  return fault.site.pin < 0
             ? fault.site.node
             : circuit_->node(fault.site.node)
                   .fanin[static_cast<size_t>(fault.site.pin)];
}

void UnrolledModel::EnsureCapacity(int frames) {
  if (frames <= frames_built_) return;
  const netlist::Circuit& circuit = *circuit_;
  const size_t total =
      static_cast<size_t>(frames) * static_cast<size_t>(circuit.size());
  assignments_.resize(
      static_cast<size_t>(frames),
      std::vector<V3>(static_cast<size_t>(circuit.num_inputs()), V3::kX));
  values_.resize(total, V5::X());
  queued_.resize(total, 0);
  buckets_.resize(static_cast<size_t>(frames) *
                  static_cast<size_t>(levels_.depth + 2));
  latched_effect_.resize(
      static_cast<size_t>(frames) * static_cast<size_t>(circuit.num_dffs()),
      0);
  excited_.resize(static_cast<size_t>(frames), 0);

  // Static controllability: a decision input lies in the cone.  The
  // per-frame recurrence only looks at frame t-1, so new frames extend
  // the existing tables.
  controllable_.resize(total, 0);
  for (int t = frames_built_; t < frames; ++t) {
    for (NodeId id : levels_.order) {
      const Node& node = circuit.node(id);
      char value = 0;
      switch (node.kind) {
        case NodeKind::kInput:
          value = 1;
          break;
        case NodeKind::kDff:
          value = t == 0 ? (free_state_ ? 1 : 0)
                         : controllable_[index(t - 1, node.fanin[0])];
          break;
        case NodeKind::kConst0:
        case NodeKind::kConst1:
          value = 0;
          break;
        default:
          for (NodeId driver : node.fanin) {
            value |= controllable_[index(t, driver)];
          }
          break;
      }
      controllable_[index(t, id)] = value;
    }
  }
  // Real-PI reachability (state bits excluded even in free_state).
  pi_reachable_.resize(total, 0);
  for (int t = frames_built_; t < frames; ++t) {
    for (NodeId id : levels_.order) {
      const Node& node = circuit.node(id);
      char value = 0;
      switch (node.kind) {
        case NodeKind::kInput:
          value = 1;
          break;
        case NodeKind::kDff:
          value = t == 0 ? 0 : pi_reachable_[index(t - 1, node.fanin[0])];
          break;
        case NodeKind::kConst0:
        case NodeKind::kConst1:
          break;
        default:
          for (NodeId driver : node.fanin) {
            value |= pi_reachable_[index(t, driver)];
          }
          break;
      }
      pi_reachable_[index(t, id)] = value;
    }
  }
  // Fault-free all-X baseline (the Reset restore image).  Frame t only
  // reads frame t-1, so new frames extend the existing image.
  baseline_.resize(total, V5::X());
  for (int t = frames_built_; t < frames; ++t) {
    for (NodeId id : levels_.order) {
      baseline_[index(t, id)] = Both(BaselineGood(t, id));
    }
  }
  frames_built_ = frames;
}

V3 UnrolledModel::BaselineGood(int t, NodeId id) const {
  const Node& node = circuit_->node(id);
  switch (node.kind) {
    case NodeKind::kInput:
      return V3::kX;  // all-X assignment by definition
    case NodeKind::kDff:
      // Frame 0 carries the unknown (or unassigned free) state.
      return t == 0 ? V3::kX : baseline_[index(t - 1, node.fanin[0])].good;
    case NodeKind::kConst0:
      return V3::k0;
    case NodeKind::kConst1:
      return V3::k1;
    case NodeKind::kOutput:
    case NodeKind::kBuf:
      return baseline_[index(t, node.fanin[0])].good;
    case NodeKind::kNot:
      return sim::Not3(baseline_[index(t, node.fanin[0])].good);
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      V3 out = V3::k1;
      for (NodeId driver : node.fanin) {
        out = sim::And3(out, baseline_[index(t, driver)].good);
      }
      return node.kind == NodeKind::kNand ? sim::Not3(out) : out;
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      V3 out = V3::k0;
      for (NodeId driver : node.fanin) {
        out = sim::Or3(out, baseline_[index(t, driver)].good);
      }
      return node.kind == NodeKind::kNor ? sim::Not3(out) : out;
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      V3 out = V3::k0;
      for (NodeId driver : node.fanin) {
        out = sim::Xor3(out, baseline_[index(t, driver)].good);
      }
      return node.kind == NodeKind::kXnor ? sim::Not3(out) : out;
    }
  }
  return V3::kX;
}

void UnrolledModel::Reset() {
  RETEST_COUNTER_ADD("atpg.model.resets", "resets", "atpg",
                     "UnrolledModel baseline restores", 1);
  for (auto& vector : assignments_) {
    std::fill(vector.begin(), vector.end(), V3::kX);
  }
  std::fill(state_assignments_.begin(), state_assignments_.end(), V3::kX);
  // Restore the fault-free all-X baseline over the logical frames.
  // Frames beyond frames_ may hold stale values from an earlier,
  // deeper search, but nothing reads them before a later Reset (via
  // GrowFrames/SetFault) restores that range too.
  const size_t active =
      static_cast<size_t>(frames_) * static_cast<size_t>(circuit_->size());
  std::copy(baseline_.begin(), baseline_.begin() + static_cast<long>(active),
            values_.begin());
  std::fill(latched_effect_.begin(), latched_effect_.end(), 0);
  effect_nodes_.clear();
  observed_count_ = 0;
  // Excitation bookkeeping against the restored values: the good value
  // at the observe node is the baseline one (fault injection only
  // changes faulty components, and only downstream).
  const V3 stuck = fault_.stuck_at_1 ? V3::k1 : V3::k0;
  std::fill(excited_.begin(), excited_.end(), 0);
  excited_count_ = 0;
  for (int t = 0; t < frames_; ++t) {
    const V3 good = values_[index(t, observe_node_)].good;
    if (good != V3::kX && good != stuck) {
      excited_[static_cast<size_t>(t)] = 1;
      ++excited_count_;
    }
  }
  // Pseudo-PO observations of the restored image.  A fault on a DFF
  // data pin shows as a latched effect even where the values match the
  // baseline (LatchedValue applies the pin fault itself), so this must
  // be re-derived rather than zeroed.
  if (observe_state_) {
    for (int t = 0; t < frames_; ++t) {
      for (int i = 0; i < circuit_->num_dffs(); ++i) {
        UpdateLatchedObservation(t, i);
      }
    }
  }
  // Re-inject the fault: only its downstream cone can differ from the
  // fault-free baseline.
  for (int t = 0; t < frames_; ++t) Touch(t, fault_.site.node);
  Propagate();
}

void UnrolledModel::SetFault(const fault::Fault& fault, int frames) {
  RETEST_COUNTER_ADD("atpg.model.set_fault", "re-arms", "atpg",
                     "UnrolledModel re-arms for another fault", 1);
  fault_ = fault;
  observe_node_ = ObserveNodeFor(fault_);
  if (frames > 0) {
    EnsureCapacity(frames);
    frames_ = frames;
  }
  Reset();
}

void UnrolledModel::GrowFrames(int frames) {
  if (frames <= 0) throw std::invalid_argument("GrowFrames: frames <= 0");
  RETEST_COUNTER_ADD("atpg.model.grow_frames", "re-arms", "atpg",
                     "UnrolledModel unroll-depth changes", 1);
  RETEST_DIST_RECORD("atpg.model.frames", "frames", "atpg",
                     "unroll depth requested via GrowFrames", frames);
  EnsureCapacity(frames);
  frames_ = frames;
  Reset();
}

V5 UnrolledModel::Compute(int t, NodeId id) const {
  const netlist::Circuit& circuit = *circuit_;
  const Node& node = circuit.node(id);
  const V3 forced = fault_.stuck_at_1 ? V3::k1 : V3::k0;
  const bool branch_fault = fault_.site.node == id && fault_.site.pin >= 0;
  const bool stem_fault = fault_.site.node == id && fault_.site.pin < 0;

  V5 out;
  switch (node.kind) {
    case NodeKind::kInput: {
      int pi_index = 0;
      for (NodeId pi : circuit.inputs()) {
        if (pi == id) break;
        ++pi_index;
      }
      out = Both(assignments_[static_cast<size_t>(t)]
                             [static_cast<size_t>(pi_index)]);
      break;
    }
    case NodeKind::kDff: {
      if (t == 0) {
        if (free_state_) {
          size_t dff_index = 0;
          for (NodeId dff : circuit.dffs()) {
            if (dff == id) break;
            ++dff_index;
          }
          out = Both(state_assignments_[dff_index]);
        } else {
          out = V5::X();
        }
      } else {
        out = values_[index(t - 1, node.fanin[0])];
        if (branch_fault) out.faulty = forced;  // data-pin fault
      }
      break;
    }
    case NodeKind::kConst0:
      out = Both(V3::k0);
      break;
    case NodeKind::kConst1:
      out = Both(V3::k1);
      break;
    case NodeKind::kOutput:
    case NodeKind::kBuf:
    case NodeKind::kNot: {
      out = values_[index(t, node.fanin[0])];
      if (branch_fault) out.faulty = forced;
      if (node.kind == NodeKind::kNot) {
        out.good = sim::Not3(out.good);
        out.faulty = sim::Not3(out.faulty);
      }
      break;
    }
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      out = Both(V3::k1);
      for (size_t pin = 0; pin < node.fanin.size(); ++pin) {
        V5 in = values_[index(t, node.fanin[pin])];
        if (branch_fault && static_cast<int>(pin) == fault_.site.pin) {
          in.faulty = forced;
        }
        out.good = sim::And3(out.good, in.good);
        out.faulty = sim::And3(out.faulty, in.faulty);
      }
      if (node.kind == NodeKind::kNand) {
        out.good = sim::Not3(out.good);
        out.faulty = sim::Not3(out.faulty);
      }
      break;
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      out = Both(V3::k0);
      for (size_t pin = 0; pin < node.fanin.size(); ++pin) {
        V5 in = values_[index(t, node.fanin[pin])];
        if (branch_fault && static_cast<int>(pin) == fault_.site.pin) {
          in.faulty = forced;
        }
        out.good = sim::Or3(out.good, in.good);
        out.faulty = sim::Or3(out.faulty, in.faulty);
      }
      if (node.kind == NodeKind::kNor) {
        out.good = sim::Not3(out.good);
        out.faulty = sim::Not3(out.faulty);
      }
      break;
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      out = Both(V3::k0);
      for (size_t pin = 0; pin < node.fanin.size(); ++pin) {
        V5 in = values_[index(t, node.fanin[pin])];
        if (branch_fault && static_cast<int>(pin) == fault_.site.pin) {
          in.faulty = forced;
        }
        out.good = sim::Xor3(out.good, in.good);
        out.faulty = sim::Xor3(out.faulty, in.faulty);
      }
      if (node.kind == NodeKind::kXnor) {
        out.good = sim::Not3(out.good);
        out.faulty = sim::Not3(out.faulty);
      }
      break;
    }
  }
  if (stem_fault) out.faulty = forced;
  return out;
}

void UnrolledModel::UpdateLatchedObservation(int t, int dff_index) {
  const size_t slot = static_cast<size_t>(t) *
                          static_cast<size_t>(circuit_->num_dffs()) +
                      static_cast<size_t>(dff_index);
  const char now = LatchedValue(t, dff_index).IsFaultEffect() ? 1 : 0;
  if (now != latched_effect_[slot]) {
    latched_effect_[slot] = now;
    observed_count_ += now ? 1 : -1;
  }
}

bool UnrolledModel::Install(int t, NodeId id, const V5& value) {
  V5& slot = values_[index(t, id)];
  if (slot == value) return false;
  const bool was_effect = slot.IsFaultEffect();
  const bool is_effect = value.IsFaultEffect();
  const bool was_po_effect =
      circuit_->node(id).kind == NodeKind::kOutput && was_effect;
  const bool is_po_effect =
      circuit_->node(id).kind == NodeKind::kOutput && is_effect;
  slot = value;
  if (was_effect != is_effect) {
    if (is_effect) {
      effect_nodes_.insert({t, id});
    } else {
      effect_nodes_.erase({t, id});
    }
  }
  if (was_po_effect != is_po_effect) {
    observed_count_ += is_po_effect ? 1 : -1;
  }
  if (id == observe_node_) {
    const V3 stuck = fault_.stuck_at_1 ? V3::k1 : V3::k0;
    const char now =
        (value.good != V3::kX && value.good != stuck) ? 1 : 0;
    if (now != excited_[static_cast<size_t>(t)]) {
      excited_[static_cast<size_t>(t)] = now;
      excited_count_ += now ? 1 : -1;
    }
  }
  return true;
}

void UnrolledModel::Touch(int t, NodeId id) {
  if (t >= frames_) return;
  const size_t slot = index(t, id);
  if (queued_[slot]) return;
  queued_[slot] = 1;
  const size_t key =
      static_cast<size_t>(t) * static_cast<size_t>(levels_.depth + 2) +
      static_cast<size_t>(levels_.level[static_cast<size_t>(id)]);
  buckets_[key].push_back(id);
  if (queue_pending_ == 0 || key < queue_cursor_) queue_cursor_ = key;
  ++queue_pending_;
}

void UnrolledModel::Propagate() {
  while (queue_pending_ > 0) {
    auto& bucket = buckets_[queue_cursor_];
    if (bucket.empty()) {
      ++queue_cursor_;
      continue;
    }
    const NodeId id = bucket.back();
    bucket.pop_back();
    --queue_pending_;
    const int t = static_cast<int>(queue_cursor_ /
                                   static_cast<size_t>(levels_.depth + 2));
    queued_[index(t, id)] = 0;
    ++evaluations_;
    const V5 value = Compute(t, id);
    if (!Install(t, id, value)) continue;
    const Node& node = circuit_->node(id);
    // Same-frame consumers; DFF consumers observe in the next frame.
    for (NodeId sink : node.fanout) {
      if (circuit_->node(sink).kind == NodeKind::kDff) {
        Touch(t + 1, sink);
        if (observe_state_) {
          int dff_index = 0;
          for (NodeId dff : circuit_->dffs()) {
            if (dff == sink) break;
            ++dff_index;
          }
          UpdateLatchedObservation(t, dff_index);
        }
      } else {
        Touch(t, sink);
      }
    }
  }
}

void UnrolledModel::AssignPi(const FramePi& pi, V3 value) {
  auto& slot =
      assignments_[static_cast<size_t>(pi.frame)][static_cast<size_t>(pi.pi)];
  if (slot == value) return;
  slot = value;
  Touch(pi.frame, circuit_->inputs()[static_cast<size_t>(pi.pi)]);
  Propagate();
}

V3 UnrolledModel::PiValue(const FramePi& pi) const {
  return assignments_[static_cast<size_t>(pi.frame)]
                     [static_cast<size_t>(pi.pi)];
}

void UnrolledModel::AssignState(int dff_index, V3 value) {
  if (!free_state_) {
    throw std::logic_error("AssignState requires free_state mode");
  }
  auto& slot = state_assignments_[static_cast<size_t>(dff_index)];
  if (slot == value) return;
  slot = value;
  Touch(0, circuit_->dffs()[static_cast<size_t>(dff_index)]);
  Propagate();
}

V5 UnrolledModel::LatchedValue(int t, int dff_index) const {
  const NodeId dff = circuit_->dffs()[static_cast<size_t>(dff_index)];
  V5 value = values_[index(t, circuit_->node(dff).fanin[0])];
  if (fault_.site.node == dff && fault_.site.pin == 0) {
    value.faulty = fault_.stuck_at_1 ? V3::k1 : V3::k0;
  }
  return value;
}

std::vector<int> UnrolledModel::ActivationFrames() const {
  std::vector<int> frames;
  for (int t = 0; t < frames_; ++t) {
    if (values_[index(t, observe_node_)].good == V3::kX) frames.push_back(t);
  }
  return frames;
}

std::vector<FrameNode> UnrolledModel::DFrontier() const {
  // Fault effects drive the frontier: any consumer with an unknown
  // output is a propagation opportunity.
  std::vector<FrameNode> frontier;
  for (const FrameNode& effect : effect_nodes_) {
    for (NodeId sink : circuit_->node(effect.node).fanout) {
      const Node& gate = circuit_->node(sink);
      if (gate.kind == NodeKind::kDff) continue;  // handled next frame
      if (!netlist::IsGate(gate.kind)) continue;
      const FrameNode candidate{effect.frame, sink};
      if (!values_[index(candidate.frame, candidate.node)].HasUnknown()) {
        continue;
      }
      frontier.push_back(candidate);
    }
  }
  return frontier;
}

long UnrolledModel::Evaluate() {
  // Full recomputation in topological order; bookkeeping goes through
  // Install so counters stay exact.
  long count = 0;
  for (int t = 0; t < frames_; ++t) {
    for (NodeId id : levels_.order) {
      Install(t, id, Compute(t, id));
      ++count;
      if (observe_state_ && circuit_->node(id).kind == NodeKind::kDff &&
          t > 0) {
        // The latched observation of frame t-1 is now final.
      }
    }
  }
  if (observe_state_) {
    for (int t = 0; t < frames_; ++t) {
      for (int i = 0; i < circuit_->num_dffs(); ++i) {
        UpdateLatchedObservation(t, i);
      }
    }
  }
  evaluations_ += count;
  return count;
}

}  // namespace retest::atpg
