// Composite 5-valued logic for stuck-at test generation.
//
// Each line carries a (good, faulty) pair of 3-valued values; the
// classic Roth values are 0=(0,0), 1=(1,1), D=(1,0), D'=(0,1), X=any
// pair with an unknown component.  Evaluating the pair componentwise
// over the 3-valued algebra gives exactly the 5-valued calculus.
#pragma once

#include "sim/logic3.h"

namespace retest::atpg {

/// A (good machine, faulty machine) value pair.
struct V5 {
  sim::V3 good = sim::V3::kX;
  sim::V3 faulty = sim::V3::kX;

  friend bool operator==(const V5&, const V5&) = default;

  static constexpr V5 Zero() { return {sim::V3::k0, sim::V3::k0}; }
  static constexpr V5 One() { return {sim::V3::k1, sim::V3::k1}; }
  static constexpr V5 D() { return {sim::V3::k1, sim::V3::k0}; }
  static constexpr V5 Dbar() { return {sim::V3::k0, sim::V3::k1}; }
  static constexpr V5 X() { return {sim::V3::kX, sim::V3::kX}; }

  /// Same binary value in both machines.
  bool IsBinary() const {
    return good != sim::V3::kX && good == faulty;
  }
  /// Fault effect: both binary and different.
  bool IsFaultEffect() const {
    return good != sim::V3::kX && faulty != sim::V3::kX && good != faulty;
  }
  bool HasUnknown() const {
    return good == sim::V3::kX || faulty == sim::V3::kX;
  }
};

/// Broadcasts a known 3-valued value into both machines.
inline V5 Both(sim::V3 v) { return {v, v}; }

}  // namespace retest::atpg
