// SIMD lane-width policy for the bit-parallel engines.
//
// The wide PROOFS kernels (sim/parallel.h) are generic over W, the
// number of 64-bit machine words per lane group: W=1 is the classic
// 64-faults-per-pass engine, W=4 packs 256 faults (one AVX2 register
// per plane), W=8 packs 512 (one AVX-512 register).  The kernels are
// written as plain word loops, so every width is portable; building
// with -mavx2 / -mavx512f (the REPRO_SIMD CMake option) lets the
// compiler lower the W=4 / W=8 loops to single vector instructions.
//
// Policy resolution, in priority order:
//   1. an explicit per-run override (ProofsOptions::lane_words);
//   2. the REPRO_SIMD environment variable (auto|avx512|avx2|off);
//   3. the compiled default (the REPRO_SIMD CMake cache option, which
//      also adds the matching -m arch flags when set to avx2/avx512).
//
// `auto` picks the widest kernel the running CPU can execute natively
// (512 on AVX-512 hardware, 256 on AVX2, else 64).  `off` forces the
// 64-lane engine.  Forcing avx2/avx512 on hardware without the
// extension is safe: the portable word loops compute bit-identical
// results, just without the vector codegen.
//
// Determinism contract: lane width never changes detection results,
// only batching and work counters (docs/SIMD.md).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace retest::sim {

/// Lane-width policy names, mirroring the REPRO_SIMD option values.
enum class SimdPolicy {
  kAuto,    ///< Widest kernel the CPU supports natively.
  kAvx512,  ///< 512 lanes (8 words) regardless of CPU support.
  kAvx2,    ///< 256 lanes (4 words) regardless of CPU support.
  kOff,     ///< 64 lanes (1 word): the classic PROOFS width.
};

/// Parses "auto" / "avx512" / "avx2" / "off" (exact, lowercase).
/// Returns nullopt for anything else.
std::optional<SimdPolicy> ParseSimdPolicy(std::string_view text);

/// Canonical name of a policy ("auto", "avx512", ...).
std::string_view ToString(SimdPolicy policy);

/// True when the running CPU executes AVX2 / AVX-512F natively.
bool CpuHasAvx2();
bool CpuHasAvx512();

/// The process-wide default policy: the REPRO_SIMD env var when set to
/// a valid value, else the compiled default (REPRO_SIMD CMake option,
/// baked in as RETEST_SIMD_DEFAULT; "auto" when unconfigured).
SimdPolicy DefaultSimdPolicy();

/// Machine words per lane group for a policy: off -> 1, avx2 -> 4,
/// avx512 -> 8, auto -> widest natively supported (1 without AVX2).
int LaneWords(SimdPolicy policy);

/// Resolves a user-facing lane_words knob: 1, 4 and 8 are taken
/// literally; 0 (or any other value) means LaneWords(DefaultSimdPolicy()).
int ResolveLaneWords(int requested);

/// Human-readable label for a resolved width, e.g. "512 lanes (avx512
/// native)" or "256 lanes (portable)"; used by the bench JSON emitters
/// so recorded numbers are honestly tagged with the codegen situation.
std::string DescribeLaneWords(int lane_words);

}  // namespace retest::sim
