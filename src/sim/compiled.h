// Flattened, levelized structure-of-arrays image of a Circuit.
//
// netlist::Circuit optimizes for construction and surgery: per-node
// std::vector fanin/fanout lists, names, incremental rewiring.  The
// simulation hot path wants the opposite — every EvalGate call walking
// `node(id).fanin` chases two pointers per gate and scatters the
// working set across the heap.  CompiledNetlist flattens the circuit
// once into dense 32-bit CSR arrays:
//
//   * `fanin` / `fanin_begin`: every node's drivers, concatenated;
//   * `fanout` / `fanout_begin`: every node's consumers, concatenated;
//   * `schedule` / `level_begin`: the evaluation order of the
//     combinational part (gates and output pins; sources excluded) in
//     level-contiguous runs, each run sorted by (kind, id) so the
//     evaluator's kind dispatch runs in monotone batches;
//   * source/sink tables (`inputs`, `outputs`, `dffs`, `dff_data`,
//     `output_src`, `pi_index`) so frame evaluators never consult the
//     Circuit at all inside the clock loop.
//
// A CompiledNetlist is immutable after construction and safe to share
// read-only across threads; the PROOFS batch workers all evaluate
// against one instance.  The source Circuit must outlive it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "sim/levelizer.h"

namespace retest::analyze {
struct SweepReport;  // analyze/sweep.h
}  // namespace retest::analyze

namespace retest::sim {

class CompiledNetlist {
 public:
  /// Flattens `circuit` (throws, via Levelize, on combinational
  /// cycles).  The circuit reference is retained.
  explicit CompiledNetlist(const netlist::Circuit& circuit);

  /// Sweep-before-compile: like the plain constructor, but nodes the
  /// sweep proved dead (analyze/sweep.h) are dropped from the
  /// evaluation schedule and from every fanout list, so neither the
  /// full-evaluation schedule nor cone traversals ever visit them.
  /// Sound for good AND faulty machines: dead nodes have no path to
  /// any PO, so their values cannot influence a detection, and a live
  /// node never reads a dead fanin (a dead node's consumers are all
  /// dead).  Fanin lists and pin order are untouched, so branch-fault
  /// injection coordinates stay valid.  Pass nullptr for no pruning.
  CompiledNetlist(const netlist::Circuit& circuit,
                  const analyze::SweepReport* prune_dead);

  const netlist::Circuit& circuit() const { return *circuit_; }

  std::int32_t num_nodes() const { return num_nodes_; }
  int depth() const { return depth_; }

  netlist::NodeKind kind(std::uint32_t id) const { return kind_[id]; }
  std::int32_t level(std::uint32_t id) const { return level_[id]; }

  /// Drivers of `id`, in pin order.
  std::span<const std::uint32_t> fanins(std::uint32_t id) const {
    return {fanin_.data() + fanin_begin_[id],
            fanin_begin_[id + 1] - fanin_begin_[id]};
  }

  /// Consumers of `id` (with multiplicity, in deterministic order).
  std::span<const std::uint32_t> fanouts(std::uint32_t id) const {
    return {fanout_.data() + fanout_begin_[id],
            fanout_begin_[id + 1] - fanout_begin_[id]};
  }

  /// Evaluation order of the combinational part: every gate and output
  /// pin exactly once, levels ascending.  Sources (PIs, DFFs,
  /// constants) are seeded by the frame evaluator and never appear.
  std::span<const std::uint32_t> schedule() const { return schedule_; }

  /// The slice of schedule() at `lvl`; runs are contiguous and sorted
  /// by (kind, id) within each level.
  std::span<const std::uint32_t> schedule_at(int lvl) const {
    const auto l = static_cast<size_t>(lvl);
    return {schedule_.data() + level_begin_[l],
            level_begin_[l + 1] - level_begin_[l]};
  }

  std::span<const std::uint32_t> inputs() const { return inputs_; }
  std::span<const std::uint32_t> outputs() const { return outputs_; }
  std::span<const std::uint32_t> dffs() const { return dffs_; }

  /// Driver of DFF i's data pin (Circuit::dffs order).
  std::uint32_t dff_data(size_t i) const { return dff_data_[i]; }
  /// Driver observed by output pin o (Circuit::outputs order).
  std::uint32_t output_src(size_t o) const { return output_src_[o]; }
  /// Primary-input position of a node, -1 for non-PI nodes.
  std::int32_t pi_index(std::uint32_t id) const { return pi_index_[id]; }

  /// Nodes the sweep pruned from the schedule and fanout lists
  /// (0 when compiled without a sweep report).
  int pruned_dead() const { return pruned_dead_; }

 private:
  const netlist::Circuit* circuit_;
  std::int32_t num_nodes_ = 0;
  int depth_ = 0;
  std::vector<netlist::NodeKind> kind_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> fanin_begin_;
  std::vector<std::uint32_t> fanin_;
  std::vector<std::uint32_t> fanout_begin_;
  std::vector<std::uint32_t> fanout_;
  std::vector<std::uint32_t> schedule_;
  std::vector<std::uint32_t> level_begin_;
  std::vector<std::uint32_t> inputs_;
  std::vector<std::uint32_t> outputs_;
  std::vector<std::uint32_t> dffs_;
  std::vector<std::uint32_t> dff_data_;
  std::vector<std::uint32_t> output_src_;
  std::vector<std::int32_t> pi_index_;
  int pruned_dead_ = 0;
};

/// Builds a shareable CompiledNetlist (the form the PROOFS dispatcher
/// hands to its batch workers).
std::shared_ptr<const CompiledNetlist> Compile(
    const netlist::Circuit& circuit);

/// Like Compile, with sweep-proven dead nodes pruned from the schedule
/// and fanout lists (see the two-argument constructor).
std::shared_ptr<const CompiledNetlist> Compile(
    const netlist::Circuit& circuit, const analyze::SweepReport* prune_dead);

}  // namespace retest::sim
