#include "sim/simd.h"

#include <cstdlib>

namespace retest::sim {

namespace {

// The CMake REPRO_SIMD option bakes the configured default in as a
// string literal; "auto" when the build did not set one.
constexpr const char* kCompiledDefault =
#ifdef RETEST_SIMD_DEFAULT
    RETEST_SIMD_DEFAULT;
#else
    "auto";
#endif

}  // namespace

std::optional<SimdPolicy> ParseSimdPolicy(std::string_view text) {
  if (text == "auto") return SimdPolicy::kAuto;
  if (text == "avx512") return SimdPolicy::kAvx512;
  if (text == "avx2") return SimdPolicy::kAvx2;
  if (text == "off") return SimdPolicy::kOff;
  return std::nullopt;
}

std::string_view ToString(SimdPolicy policy) {
  switch (policy) {
    case SimdPolicy::kAuto: return "auto";
    case SimdPolicy::kAvx512: return "avx512";
    case SimdPolicy::kAvx2: return "avx2";
    case SimdPolicy::kOff: return "off";
  }
  return "auto";
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

SimdPolicy DefaultSimdPolicy() {
  if (const char* env = std::getenv("REPRO_SIMD")) {
    if (const auto parsed = ParseSimdPolicy(env)) return *parsed;
  }
  if (const auto compiled = ParseSimdPolicy(kCompiledDefault)) {
    return *compiled;
  }
  return SimdPolicy::kAuto;
}

int LaneWords(SimdPolicy policy) {
  switch (policy) {
    case SimdPolicy::kOff: return 1;
    case SimdPolicy::kAvx2: return 4;
    case SimdPolicy::kAvx512: return 8;
    case SimdPolicy::kAuto:
      if (CpuHasAvx512()) return 8;
      if (CpuHasAvx2()) return 4;
      return 1;
  }
  return 1;
}

int ResolveLaneWords(int requested) {
  if (requested == 1 || requested == 4 || requested == 8) return requested;
  return LaneWords(DefaultSimdPolicy());
}

std::string DescribeLaneWords(int lane_words) {
  const int lanes = 64 * lane_words;
  const char* codegen = "portable";
  if (lane_words == 8 && CpuHasAvx512()) {
    codegen = "avx512 native";
  } else if (lane_words == 4 && CpuHasAvx2()) {
    codegen = "avx2 native";
  } else if (lane_words == 1) {
    codegen = "scalar word";
  }
  return std::to_string(lanes) + " lanes (" + codegen + ")";
}

}  // namespace retest::sim
