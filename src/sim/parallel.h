// 64-way bit-parallel 3-valued logic.
//
// A Word3 packs 64 independent 3-valued values: bit i of `one` set
// means machine i sees 1, bit i of `zero` set means it sees 0, neither
// means X (both set is invalid).  This is the PROOFS-style engine: one
// machine word simulates 64 faulty machines at once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "sim/levelizer.h"
#include "sim/logic3.h"

namespace retest::sim {

/// 64 packed 3-valued values.
struct Word3 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  /// Broadcasts a scalar value to all 64 lanes.
  static Word3 Broadcast(V3 v) {
    switch (v) {
      case V3::k0: return {0, ~0ull};
      case V3::k1: return {~0ull, 0};
      default: return {0, 0};
    }
  }

  /// Value of lane i.
  V3 Lane(int i) const {
    const std::uint64_t m = 1ull << i;
    if (one & m) return V3::k1;
    if (zero & m) return V3::k0;
    return V3::kX;
  }

  /// Forces lane i to a binary value.
  void SetLane(int i, bool v) {
    const std::uint64_t m = 1ull << i;
    if (v) {
      one |= m;
      zero &= ~m;
    } else {
      zero |= m;
      one &= ~m;
    }
  }

  friend bool operator==(const Word3&, const Word3&) = default;
};

inline Word3 Not64(Word3 a) { return {a.zero, a.one}; }

inline Word3 And64(Word3 a, Word3 b) {
  return {a.one & b.one, a.zero | b.zero};
}

inline Word3 Or64(Word3 a, Word3 b) { return {a.one | b.one, a.zero & b.zero}; }

inline Word3 Xor64(Word3 a, Word3 b) {
  return {(a.one & b.zero) | (a.zero & b.one),
          (a.one & b.one) | (a.zero & b.zero)};
}

/// Evaluates a combinational gate over 64-way words.
Word3 EvalGate64(netlist::NodeKind kind, std::span<const Word3> fanin);

/// A forced value at a fault site, applied during frame evaluation.
/// `pin == -1` forces the node's output (stem fault); `pin >= 0` forces
/// what the node reads on that fanin branch only.
struct Injection {
  netlist::NodeId node = netlist::kNoNode;
  int pin = -1;
  bool value = false;  ///< stuck-at value
  int lane = 0;        ///< which of the 64 machines it applies to
};

/// One-clock-frame evaluator over 64 parallel machines with fault
/// injection.  Owns per-node word storage; the caller owns the state.
class ParallelFrame {
 public:
  explicit ParallelFrame(const netlist::Circuit& circuit);

  /// Installs the set of active injections (grouped by node internally).
  void SetInjections(std::span<const Injection> injections);

  /// Evaluates one frame: seeds PIs with broadcast scalar inputs and
  /// DFF outputs from `state` (one Word3 per DFF), applies injections,
  /// and leaves all node values readable via value().  Then latches the
  /// next state into `state`.
  void Step(std::span<const V3> inputs, std::vector<Word3>& state);

  /// Word currently on a node's output net.
  const Word3& value(netlist::NodeId id) const {
    return values_[static_cast<size_t>(id)];
  }

  const netlist::Circuit& circuit() const { return *circuit_; }

 private:
  const netlist::Circuit* circuit_;
  Levelization levels_;
  std::vector<Word3> values_;
  // Injections indexed by node id; empty vectors for untouched nodes.
  std::vector<std::vector<Injection>> by_node_;
  std::vector<netlist::NodeId> touched_nodes_;
};

}  // namespace retest::sim
