// 64-way bit-parallel 3-valued logic.
//
// A Word3 packs 64 independent 3-valued values: bit i of `one` set
// means machine i sees 1, bit i of `zero` set means it sees 0, neither
// means X (both set is invalid).  This is the PROOFS-style engine: one
// machine word simulates 64 faulty machines at once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <utility>

#include "netlist/circuit.h"
#include "sim/levelizer.h"
#include "sim/logic3.h"
#include "sim/simulator.h"

namespace retest::sim {

/// 64 packed 3-valued values.
struct Word3 {
  std::uint64_t one = 0;
  std::uint64_t zero = 0;

  /// Broadcasts a scalar value to all 64 lanes.
  static Word3 Broadcast(V3 v) {
    switch (v) {
      case V3::k0: return {0, ~0ull};
      case V3::k1: return {~0ull, 0};
      default: return {0, 0};
    }
  }

  /// Value of lane i.
  V3 Lane(int i) const {
    const std::uint64_t m = 1ull << i;
    if (one & m) return V3::k1;
    if (zero & m) return V3::k0;
    return V3::kX;
  }

  /// Forces lane i to a binary value.
  void SetLane(int i, bool v) {
    const std::uint64_t m = 1ull << i;
    if (v) {
      one |= m;
      zero &= ~m;
    } else {
      zero |= m;
      one &= ~m;
    }
  }

  friend bool operator==(const Word3&, const Word3&) = default;
};

inline Word3 Not64(Word3 a) { return {a.zero, a.one}; }

inline Word3 And64(Word3 a, Word3 b) {
  return {a.one & b.one, a.zero | b.zero};
}

inline Word3 Or64(Word3 a, Word3 b) { return {a.one | b.one, a.zero & b.zero}; }

inline Word3 Xor64(Word3 a, Word3 b) {
  return {(a.one & b.zero) | (a.zero & b.one),
          (a.one & b.one) | (a.zero & b.zero)};
}

/// Evaluates a combinational gate over 64-way words.
Word3 EvalGate64(netlist::NodeKind kind, std::span<const Word3> fanin);

/// A forced value at a fault site, applied during frame evaluation.
/// `pin == -1` forces the node's output (stem fault); `pin >= 0` forces
/// what the node reads on that fanin branch only.
struct Injection {
  netlist::NodeId node = netlist::kNoNode;
  int pin = -1;
  bool value = false;  ///< stuck-at value
  int lane = 0;        ///< which of the 64 machines it applies to
};

/// Broadcast (Word3) image of a good-machine Trace: one word per node
/// per frame, shared read-only across batches and threads.  Cone-mode
/// evaluation compares against and seeds from these words directly,
/// instead of re-broadcasting scalar trace values on every access.
class WordTrace {
 public:
  explicit WordTrace(const Trace& trace);

  size_t num_frames() const { return frames_; }

  /// All node words of the good machine at frame t.
  std::span<const Word3> frame(size_t t) const {
    return {words_.data() + t * num_nodes_, num_nodes_};
  }

 private:
  size_t frames_ = 0;
  size_t num_nodes_ = 0;
  std::vector<Word3> words_;  // frame-major
};

/// One-clock-frame evaluator over 64 parallel machines with fault
/// injection.  Owns per-node word storage; the caller owns the state.
///
/// Two evaluation modes:
///  - full (default): every node is evaluated on every Step.
///  - cone-restricted: after RestrictToInjectionCones(), evaluation is
///    limited to the union of the injection sites' structural fanout
///    cones (transitive through DFFs) — the activity mask.  Everything
///    outside behaves exactly like the good machine and is read from a
///    cached good-machine WordTrace (the PROOFS insight: a fault cannot
///    perturb values outside its fanout cone).  Within the cone the
///    evaluation is event-driven: dirty nodes (word differs from the
///    good machine this frame) schedule their cone fanouts into
///    per-level buckets, so only gates on the active frontier are
///    visited at all.  Detected faults can be retired per lane with
///    DropLanes, after which their lanes are clamped to the good
///    machine and stop generating events.  Per-frame cost falls from
///    O(|circuit|) to O(|active frontier|), which decays as faults are
///    detected and dropped.
class ParallelFrame {
 public:
  explicit ParallelFrame(const netlist::Circuit& circuit);

  /// Installs the set of active injections (grouped by node internally)
  /// and drops any cone restriction from a previous batch.
  void SetInjections(std::span<const Injection> injections);

  /// Precomputes the activity mask for the current injections: the
  /// union of the fanout cones of all injection sites, transitive
  /// through DFFs (a faulty value latched into a register keeps
  /// perturbing its Q consumers on later frames).  Until the next
  /// SetInjections, Step must be called with a good-machine frame.
  void RestrictToInjectionCones();

  /// True when a cone restriction is active.
  bool cone_restricted() const { return cone_mode_; }

  /// Number of nodes inside the active cones (0 when unrestricted).
  int cone_size() const { return cone_size_; }

  /// Evaluates one frame (full mode): seeds PIs with broadcast scalar
  /// inputs and DFF outputs from `state` (one Word3 per DFF), applies
  /// injections, and leaves all node values readable via value().  Then
  /// latches the next state into `state`.
  void Step(std::span<const V3> inputs, std::vector<Word3>& state);

  /// Cone-restricted frame: like Step, but only cone nodes on the
  /// active frontier are evaluated; everything else matches
  /// `good_frame` (all node words of the good machine at this frame,
  /// i.e. WordTrace::frame(t)).  Only cone entries of `state` are
  /// maintained; read results via word() and dirty(), not value().
  void Step(std::span<const V3> inputs, std::vector<Word3>& state,
            std::span<const Word3> good_frame);

  /// Retires the given lanes (bitmask): their injections stop being
  /// applied and their words are clamped to the good machine, so the
  /// dropped faults generate no further events.  PROOFS fault dropping
  /// at lane granularity.  Cleared by SetInjections.
  void DropLanes(std::uint64_t lanes) { active_lanes_ &= ~lanes; }

  /// Word currently on a node's output net.  In cone-restricted mode
  /// this is only valid for dirty(id) nodes — use word() elsewhere.
  const Word3& value(netlist::NodeId id) const {
    return values_[static_cast<size_t>(id)];
  }

  /// True when the node's word differs from the good machine in some
  /// lane this frame (cone-restricted mode; clean nodes were skipped).
  bool dirty(netlist::NodeId id) const {
    return dirty_[static_cast<size_t>(id)] != 0;
  }

  /// Node value in cone-restricted mode: the evaluated word for dirty
  /// nodes, the good-machine word for clean ones.
  Word3 word(netlist::NodeId id, std::span<const Word3> good_frame) const {
    return dirty(id) ? values_[static_cast<size_t>(id)]
                     : good_frame[static_cast<size_t>(id)];
  }

  /// Indices into circuit().outputs() that can differ from the good
  /// machine under the current restriction (all outputs when
  /// unrestricted).  A detection scan only needs to look at these.
  const std::vector<int>& active_outputs() const { return active_outputs_; }

  /// Node evaluations performed by Step since construction / the last
  /// ResetStats (deterministic work measure; each counts 64 machines).
  long gate_evals() const { return gate_evals_; }
  void ResetStats() { gate_evals_ = 0; }

  const netlist::Circuit& circuit() const { return *circuit_; }

 private:
  void Validate(std::span<const V3> inputs,
                const std::vector<Word3>& state) const;
  void SeedSources(std::span<const V3> inputs);
  void EvalNode(netlist::NodeId id, std::vector<Word3>& fanin_words);
  void Latch(std::vector<Word3>& state, size_t dff_index);

  const netlist::Circuit* circuit_;
  Levelization levels_;
  std::vector<Word3> values_;
  // Injections indexed by node id; empty vectors for untouched nodes.
  std::vector<std::vector<Injection>> by_node_;
  std::vector<netlist::NodeId> touched_nodes_;
  // All output indices, for active_outputs() in full mode.
  std::vector<int> all_outputs_;
  // NodeId -> primary-input index (-1 elsewhere), for seeding injected
  // PIs in cone mode.
  std::vector<int> pi_index_;

  // Cone restriction (valid while cone_mode_):
  bool cone_mode_ = false;
  int cone_size_ = 0;
  std::uint64_t active_lanes_ = ~0ull;  // lanes not yet dropped
  std::vector<char> in_cone_;           // activity mask, per node
  std::vector<char> dirty_;             // word differs from good
  std::vector<netlist::NodeId> dirty_list_;  // nodes with dirty_ set
  std::vector<char> scheduled_;              // queued for eval this frame
  std::vector<std::vector<netlist::NodeId>> buckets_;  // event queue, by level
  // Cone gates/POs carrying injections (node, lane mask): always
  // scheduled while any of their lanes is still active.
  std::vector<std::pair<netlist::NodeId, std::uint64_t>> forced_;
  std::vector<size_t> cone_dffs_;  // dff indices latched in cone mode
  std::vector<int> active_outputs_;

  std::vector<Word3> fanin_scratch_;
  long gate_evals_ = 0;
};

}  // namespace retest::sim
