// W-lane bit-parallel 3-valued logic (the PROOFS machine-word engine,
// generalized over SIMD width).
//
// A Vec3<W> packs 64*W independent 3-valued values as two planes of W
// machine words: bit i of plane `one` set means machine i sees 1, bit
// i of plane `zero` set means it sees 0, neither means X (both set is
// invalid).  W=1 is the classic 1990-era PROOFS width (one uint64_t
// per plane, 64 faulty machines per pass); W=4 is one AVX2 register
// per plane (256 machines); W=8 is one AVX-512 register (512
// machines).  All widths are implemented as portable word loops —
// building with -mavx2/-mavx512f (the REPRO_SIMD CMake option, see
// sim/simd.h and docs/SIMD.md) lets the compiler collapse them into
// single vector instructions, and every width computes bit-identical
// per-lane results either way.
//
// WideFrame<W> is the frame evaluator over these words.  It runs on a
// CompiledNetlist (sim/compiled.h): flattened CSR fanin/fanout arrays
// and a level-contiguous, kind-batched evaluation schedule, instead of
// chasing per-node std::vector pointers through the Circuit on every
// gate evaluation.
#pragma once

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "netlist/circuit.h"
#include "sim/compiled.h"
#include "sim/levelizer.h"
#include "sim/logic3.h"
#include "sim/simulator.h"

namespace retest::sim {

/// 64*W packed 3-valued values (two bit-planes of W machine words).
template <int W>
struct Vec3 {
  static_assert(W >= 1);
  /// Lanes per vector: the number of faulty machines one Vec3 carries.
  static constexpr int kLanes = 64 * W;

  std::array<std::uint64_t, W> one{};
  std::array<std::uint64_t, W> zero{};

  /// Broadcasts a scalar value to all lanes.
  static Vec3 Broadcast(V3 v) {
    Vec3 r;
    switch (v) {
      case V3::k0: r.zero.fill(~0ull); break;
      case V3::k1: r.one.fill(~0ull); break;
      default: break;
    }
    return r;
  }

  /// Value of lane i.  The shift is performed on the masked unsigned
  /// bit index, so it is well defined for every in-range lane (the
  /// 1995 code shifted `1ull << i` with a signed int — UB from lane 64
  /// up, exactly where the wide widths live); out-of-range lanes are
  /// an assertion failure.
  V3 Lane(int i) const {
    assert(i >= 0 && i < kLanes);
    const auto word = static_cast<unsigned>(i) >> 6;
    const std::uint64_t m = 1ull << (static_cast<unsigned>(i) & 63u);
    if (one[word % W] & m) return V3::k1;
    if (zero[word % W] & m) return V3::k0;
    return V3::kX;
  }

  /// Forces lane i to a binary value (same domain contract as Lane).
  void SetLane(int i, bool v) {
    assert(i >= 0 && i < kLanes);
    const auto word = static_cast<unsigned>(i) >> 6;
    const std::uint64_t m = 1ull << (static_cast<unsigned>(i) & 63u);
    if (v) {
      one[word % W] |= m;
      zero[word % W] &= ~m;
    } else {
      zero[word % W] |= m;
      one[word % W] &= ~m;
    }
  }

  friend bool operator==(const Vec3&, const Vec3&) = default;
};

/// The 3-valued algebra, word-parallel over all lanes.  Plain loops by
/// design: at W=4/8 the compiler vectorizes each plane op into one
/// AVX2/AVX-512 instruction when the build enables those extensions.
template <int W>
inline Vec3<W> NotV(const Vec3<W>& a) {
  Vec3<W> r;
  r.one = a.zero;
  r.zero = a.one;
  return r;
}

template <int W>
inline Vec3<W> AndV(const Vec3<W>& a, const Vec3<W>& b) {
  Vec3<W> r;
  for (int w = 0; w < W; ++w) {
    r.one[w] = a.one[w] & b.one[w];
    r.zero[w] = a.zero[w] | b.zero[w];
  }
  return r;
}

template <int W>
inline Vec3<W> OrV(const Vec3<W>& a, const Vec3<W>& b) {
  Vec3<W> r;
  for (int w = 0; w < W; ++w) {
    r.one[w] = a.one[w] | b.one[w];
    r.zero[w] = a.zero[w] & b.zero[w];
  }
  return r;
}

template <int W>
inline Vec3<W> XorV(const Vec3<W>& a, const Vec3<W>& b) {
  Vec3<W> r;
  for (int w = 0; w < W; ++w) {
    r.one[w] = (a.one[w] & b.zero[w]) | (a.zero[w] & b.one[w]);
    r.zero[w] = (a.one[w] & b.one[w]) | (a.zero[w] & b.zero[w]);
  }
  return r;
}

/// The classic 64-lane word and its operators, now the W=1 instance.
using Word3 = Vec3<1>;

inline Word3 Not64(Word3 a) { return NotV(a); }
inline Word3 And64(Word3 a, Word3 b) { return AndV(a, b); }
inline Word3 Or64(Word3 a, Word3 b) { return OrV(a, b); }
inline Word3 Xor64(Word3 a, Word3 b) { return XorV(a, b); }

/// Evaluates a combinational gate over W-word vectors.
template <int W>
Vec3<W> EvalGateWide(netlist::NodeKind kind, std::span<const Vec3<W>> fanin);

/// 64-lane compatibility name.
inline Word3 EvalGate64(netlist::NodeKind kind,
                        std::span<const Word3> fanin) {
  return EvalGateWide<1>(kind, fanin);
}

/// A set of lanes (one bit per faulty machine), W words wide.  Used
/// for PROOFS fault dropping and the detection scan.
template <int W>
struct LaneMask {
  std::array<std::uint64_t, W> bits{};

  static LaneMask None() { return {}; }
  static LaneMask All() {
    LaneMask m;
    m.bits.fill(~0ull);
    return m;
  }
  /// The first n lanes set (a partial final batch's live set).
  static LaneMask FirstN(int n) {
    assert(n >= 0 && n <= 64 * W);
    LaneMask m;
    for (int w = 0; w < W && n > 0; ++w, n -= 64) {
      m.bits[w] = n >= 64 ? ~0ull : ((1ull << (static_cast<unsigned>(n) & 63u)) - 1);
    }
    return m;
  }

  bool test(int lane) const {
    assert(lane >= 0 && lane < 64 * W);
    return (bits[static_cast<unsigned>(lane) >> 6] >>
            (static_cast<unsigned>(lane) & 63u)) & 1;
  }
  void set(int lane) {
    assert(lane >= 0 && lane < 64 * W);
    bits[static_cast<unsigned>(lane) >> 6] |=
        1ull << (static_cast<unsigned>(lane) & 63u);
  }
  void reset(int lane) {
    assert(lane >= 0 && lane < 64 * W);
    bits[static_cast<unsigned>(lane) >> 6] &=
        ~(1ull << (static_cast<unsigned>(lane) & 63u));
  }

  bool any() const {
    for (int w = 0; w < W; ++w) {
      if (bits[w] != 0) return true;
    }
    return false;
  }
  int count() const {
    int n = 0;
    for (int w = 0; w < W; ++w) n += std::popcount(bits[w]);
    return n;
  }
  bool intersects(const LaneMask& other) const {
    for (int w = 0; w < W; ++w) {
      if (bits[w] & other.bits[w]) return true;
    }
    return false;
  }

  LaneMask& operator&=(const LaneMask& o) {
    for (int w = 0; w < W; ++w) bits[w] &= o.bits[w];
    return *this;
  }
  LaneMask& operator|=(const LaneMask& o) {
    for (int w = 0; w < W; ++w) bits[w] |= o.bits[w];
    return *this;
  }
  LaneMask operator~() const {
    LaneMask r;
    for (int w = 0; w < W; ++w) r.bits[w] = ~bits[w];
    return r;
  }
  friend LaneMask operator&(LaneMask a, const LaneMask& b) {
    a &= b;
    return a;
  }
  friend LaneMask operator|(LaneMask a, const LaneMask& b) {
    a |= b;
    return a;
  }

  friend bool operator==(const LaneMask&, const LaneMask&) = default;
};

/// A forced value at a fault site, applied during frame evaluation.
/// `pin == -1` forces the node's output (stem fault); `pin >= 0` forces
/// what the node reads on that fanin branch only.
struct Injection {
  netlist::NodeId node = netlist::kNoNode;
  int pin = -1;
  bool value = false;  ///< stuck-at value
  int lane = 0;        ///< which of the frame's 64*W machines it applies to
};

/// Broadcast (Vec3) image of a good-machine Trace: one vector per node
/// per frame, shared read-only across batches and threads.  Cone-mode
/// evaluation compares against and seeds from these words directly,
/// instead of re-broadcasting scalar trace values on every access.
template <int W>
class WideTrace {
 public:
  explicit WideTrace(const Trace& trace);

  size_t num_frames() const { return frames_; }

  /// All node vectors of the good machine at frame t.
  std::span<const Vec3<W>> frame(size_t t) const {
    return {words_.data() + t * num_nodes_, num_nodes_};
  }

 private:
  size_t frames_ = 0;
  size_t num_nodes_ = 0;
  std::vector<Vec3<W>> words_;  // frame-major
};

/// 64-lane compatibility name.
using WordTrace = WideTrace<1>;

/// One-clock-frame evaluator over 64*W parallel machines with fault
/// injection.  Owns per-node vector storage; the caller owns the state.
///
/// Two evaluation modes:
///  - full (default): every scheduled node is evaluated on every Step,
///    walking the CompiledNetlist's level-contiguous, kind-batched
///    schedule over CSR fanin runs.
///  - cone-restricted: after RestrictToInjectionCones(), evaluation is
///    limited to the union of the injection sites' structural fanout
///    cones (transitive through DFFs) — the activity mask.  Everything
///    outside behaves exactly like the good machine and is read from a
///    cached good-machine WideTrace (the PROOFS insight: a fault cannot
///    perturb values outside its fanout cone).  Within the cone the
///    evaluation is event-driven: dirty nodes (vector differs from the
///    good machine this frame) schedule their cone fanouts into
///    per-level buckets, so only gates on the active frontier are
///    visited at all.  Detected faults can be retired per lane with
///    DropLanes, after which their lanes are clamped to the good
///    machine and stop generating events.  Per-frame cost falls from
///    O(|circuit|) to O(|active frontier|), which decays as faults are
///    detected and dropped.
template <int W>
class WideFrame {
 public:
  /// Compiles the circuit privately.  Prefer the shared-netlist
  /// overload when many frames evaluate the same circuit (the PROOFS
  /// batch workers share one CompiledNetlist).
  explicit WideFrame(const netlist::Circuit& circuit);
  explicit WideFrame(std::shared_ptr<const CompiledNetlist> compiled);

  /// Installs the set of active injections (grouped by node internally)
  /// and drops any cone restriction from a previous batch.
  void SetInjections(std::span<const Injection> injections);

  /// Precomputes the activity mask for the current injections: the
  /// union of the fanout cones of all injection sites, transitive
  /// through DFFs (a faulty value latched into a register keeps
  /// perturbing its Q consumers on later frames).  Until the next
  /// SetInjections, Step must be called with a good-machine frame.
  void RestrictToInjectionCones();

  /// True when a cone restriction is active.
  bool cone_restricted() const { return cone_mode_; }

  /// Number of nodes inside the active cones (0 when unrestricted).
  int cone_size() const { return cone_size_; }

  /// Evaluates one frame (full mode): seeds PIs with broadcast scalar
  /// inputs and DFF outputs from `state` (one Vec3 per DFF), applies
  /// injections, and leaves all node values readable via value().  Then
  /// latches the next state into `state`.
  void Step(std::span<const V3> inputs, std::vector<Vec3<W>>& state);

  /// Cone-restricted frame: like Step, but only cone nodes on the
  /// active frontier are evaluated; everything else matches
  /// `good_frame` (all node vectors of the good machine at this frame,
  /// i.e. WideTrace::frame(t)).  Only cone entries of `state` are
  /// maintained; read results via word() and dirty(), not value().
  void Step(std::span<const V3> inputs, std::vector<Vec3<W>>& state,
            std::span<const Vec3<W>> good_frame);

  /// Retires the given lanes: their injections stop being applied and
  /// their words are clamped to the good machine, so the dropped
  /// faults generate no further events.  PROOFS fault dropping at lane
  /// granularity.  Cleared by SetInjections.
  void DropLanes(const LaneMask<W>& lanes) {
    active_lanes_ &= ~lanes;
  }
  /// Convenience for the first 64 lanes (the whole frame at W=1).
  void DropLanes(std::uint64_t lanes) {
    active_lanes_.bits[0] &= ~lanes;
  }

  /// Vector currently on a node's output net.  In cone-restricted mode
  /// this is only valid for dirty(id) nodes — use word() elsewhere.
  const Vec3<W>& value(netlist::NodeId id) const {
    return values_[static_cast<size_t>(id)];
  }

  /// True when the node's vector differs from the good machine in some
  /// lane this frame (cone-restricted mode; clean nodes were skipped).
  bool dirty(netlist::NodeId id) const {
    return dirty_[static_cast<size_t>(id)] != 0;
  }

  /// Node value in cone-restricted mode: the evaluated vector for dirty
  /// nodes, the good-machine vector for clean ones.
  Vec3<W> word(netlist::NodeId id, std::span<const Vec3<W>> good_frame) const {
    return dirty(id) ? values_[static_cast<size_t>(id)]
                     : good_frame[static_cast<size_t>(id)];
  }

  /// Indices into circuit().outputs() that can differ from the good
  /// machine under the current restriction (all outputs when
  /// unrestricted).  A detection scan only needs to look at these.
  const std::vector<int>& active_outputs() const { return active_outputs_; }

  /// Node evaluations performed by Step since construction / the last
  /// ResetStats (deterministic work measure; each counts 64*W
  /// machines).
  long gate_evals() const { return gate_evals_; }
  void ResetStats() { gate_evals_ = 0; }

  const netlist::Circuit& circuit() const { return compiled_->circuit(); }
  const CompiledNetlist& compiled() const { return *compiled_; }

 private:
  void Validate(std::span<const V3> inputs,
                const std::vector<Vec3<W>>& state) const;
  void SeedSources(std::span<const V3> inputs);
  /// Gate function over current values_, straight from the CSR fanin
  /// run (no injections).
  Vec3<W> EvalFromValues(std::uint32_t id) const;
  /// Full evaluation of one node with this node's injections applied.
  void EvalNodeInjected(std::uint32_t id);

  std::shared_ptr<const CompiledNetlist> compiled_;
  std::vector<Vec3<W>> values_;
  // Injections indexed by node id; empty vectors for untouched nodes.
  std::vector<std::vector<Injection>> by_node_;
  std::vector<std::uint32_t> touched_nodes_;
  // All output indices, for active_outputs() in full mode.
  std::vector<int> all_outputs_;

  // Cone restriction (valid while cone_mode_):
  bool cone_mode_ = false;
  int cone_size_ = 0;
  LaneMask<W> active_lanes_ = LaneMask<W>::All();  // lanes not yet dropped
  std::vector<char> in_cone_;                // activity mask, per node
  std::vector<char> dirty_;                  // vector differs from good
  std::vector<std::uint32_t> dirty_list_;    // nodes with dirty_ set
  std::vector<char> scheduled_;              // queued for eval this frame
  std::vector<std::vector<std::uint32_t>> buckets_;  // event queue, by level
  // Cone gates/POs carrying injections (node, lane mask): always
  // scheduled while any of their lanes is still active.
  std::vector<std::pair<std::uint32_t, LaneMask<W>>> forced_;
  std::vector<size_t> cone_dffs_;  // dff indices latched in cone mode
  std::vector<int> active_outputs_;

  std::vector<Vec3<W>> fanin_scratch_;
  long gate_evals_ = 0;
};

/// The classic 64-lane engine is the W=1 instance.
using ParallelFrame = WideFrame<1>;

// The supported widths are instantiated once in sim/parallel.cpp
// (64 / 256 / 512 lanes; see sim/simd.h for the dispatch policy).
extern template class WideTrace<1>;
extern template class WideTrace<4>;
extern template class WideTrace<8>;
extern template class WideFrame<1>;
extern template class WideFrame<4>;
extern template class WideFrame<8>;
extern template Vec3<1> EvalGateWide<1>(netlist::NodeKind,
                                        std::span<const Vec3<1>>);
extern template Vec3<4> EvalGateWide<4>(netlist::NodeKind,
                                        std::span<const Vec3<4>>);
extern template Vec3<8> EvalGateWide<8>(netlist::NodeKind,
                                        std::span<const Vec3<8>>);

}  // namespace retest::sim
