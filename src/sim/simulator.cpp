#include "sim/simulator.h"

#include <sstream>
#include <stdexcept>

#include "analyze/sweep.h"

namespace retest::sim {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

std::string ToString(std::span<const V3> values) {
  std::string out;
  out.reserve(values.size());
  for (V3 v : values) out.push_back(ToChar(v));
  return out;
}

std::vector<V3> FromString(const std::string& text) {
  std::vector<V3> out;
  out.reserve(text.size());
  for (char c : text) out.push_back(FromChar(c));
  return out;
}

V3 EvalGate3(NodeKind kind, std::span<const V3> fanin) {
  switch (kind) {
    case NodeKind::kConst0:
      return V3::k0;
    case NodeKind::kConst1:
      return V3::k1;
    case NodeKind::kBuf:
      return fanin[0];
    case NodeKind::kNot:
      return Not3(fanin[0]);
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      V3 acc = V3::k1;
      for (V3 v : fanin) acc = And3(acc, v);
      return kind == NodeKind::kAnd ? acc : Not3(acc);
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      V3 acc = V3::k0;
      for (V3 v : fanin) acc = Or3(acc, v);
      return kind == NodeKind::kOr ? acc : Not3(acc);
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      V3 acc = V3::k0;
      for (V3 v : fanin) acc = Xor3(acc, v);
      return kind == NodeKind::kXor ? acc : Not3(acc);
    }
    default:
      throw std::invalid_argument("EvalGate3: not a combinational kind");
  }
}

Simulator::Simulator(const netlist::Circuit& circuit)
    : circuit_(&circuit),
      levels_(Levelize(circuit)),
      values_(static_cast<size_t>(circuit.size()), V3::kX),
      state_(static_cast<size_t>(circuit.num_dffs()), V3::kX) {}

void Simulator::Reset(V3 init) {
  state_.assign(state_.size(), init);
}

void Simulator::SetState(std::span<const V3> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("SetState: wrong state width");
  }
  state_.assign(state.begin(), state.end());
}

std::vector<V3> Simulator::State() const { return state_; }

bool Simulator::StateIsBinary() const {
  for (V3 v : state_) {
    if (v == V3::kX) return false;
  }
  return true;
}

void Simulator::EvaluateCombinational(std::span<const V3> inputs) {
  if (inputs.size() != static_cast<size_t>(circuit_->num_inputs())) {
    throw std::invalid_argument("Step: wrong input width");
  }
  // Seed sources.
  const auto& pis = circuit_->inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    values_[static_cast<size_t>(pis[i])] = inputs[i];
  }
  const auto& dffs = circuit_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    values_[static_cast<size_t>(dffs[i])] = state_[i];
  }
  // One pass in topological order.
  std::vector<V3> fanin_values;
  for (NodeId id : levels_.order) {
    const Node& node = circuit_->node(id);
    switch (node.kind) {
      case NodeKind::kInput:
      case NodeKind::kDff:
        break;  // seeded above
      case NodeKind::kOutput:
        values_[static_cast<size_t>(id)] =
            values_[static_cast<size_t>(node.fanin[0])];
        break;
      default: {
        fanin_values.clear();
        for (NodeId driver : node.fanin) {
          fanin_values.push_back(values_[static_cast<size_t>(driver)]);
        }
        values_[static_cast<size_t>(id)] = EvalGate3(node.kind, fanin_values);
        break;
      }
    }
  }
}

std::vector<V3> Simulator::Step(std::span<const V3> inputs) {
  EvaluateCombinational(inputs);
  std::vector<V3> outputs;
  outputs.reserve(circuit_->outputs().size());
  for (NodeId id : circuit_->outputs()) {
    outputs.push_back(values_[static_cast<size_t>(id)]);
  }
  // Clock edge: latch D values.
  const auto& dffs = circuit_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    const Node& dff = circuit_->node(dffs[i]);
    state_[i] = values_[static_cast<size_t>(dff.fanin[0])];
  }
  return outputs;
}

std::vector<std::vector<V3>> Simulator::Run(const InputSequence& sequence) {
  std::vector<std::vector<V3>> outputs;
  outputs.reserve(sequence.size());
  for (const InputVector& vec : sequence) outputs.push_back(Step(vec));
  return outputs;
}

Trace::Trace(const netlist::Circuit& circuit, const InputSequence& sequence)
    : frames_(sequence.size()),
      num_nodes_(static_cast<size_t>(circuit.size())) {
  values_.resize(frames_ * num_nodes_);
  outputs_.reserve(frames_);
  Simulator simulator(circuit);
  simulator.Reset();
  for (size_t t = 0; t < frames_; ++t) {
    outputs_.push_back(simulator.Step(sequence[t]));
    V3* frame = values_.data() + t * num_nodes_;
    for (size_t id = 0; id < num_nodes_; ++id) {
      frame[id] = simulator.value(static_cast<netlist::NodeId>(id));
    }
  }
}

Trace::Trace(const netlist::Circuit& original, const InputSequence& sequence,
             const analyze::SweptNetlist& swept)
    : frames_(sequence.size()),
      num_nodes_(static_cast<size_t>(original.size())) {
  if (swept.node_map.size() != num_nodes_) {
    throw std::invalid_argument("Trace: sweep is for a different circuit");
  }
  values_.assign(frames_ * num_nodes_, V3::kX);
  outputs_.reserve(frames_);
  Simulator simulator(swept.circuit);
  simulator.Reset();
  for (size_t t = 0; t < frames_; ++t) {
    outputs_.push_back(simulator.Step(sequence[t]));
    V3* frame = values_.data() + t * num_nodes_;
    for (size_t id = 0; id < num_nodes_; ++id) {
      const netlist::NodeId mapped = swept.node_map[id];
      if (mapped == netlist::kNoNode) {
        // Unmapped nodes are dead (value never read; stays X) or
        // proven constants folded into every consumer — those must be
        // replayed from const_of, because a fault cone can still read
        // the original node through an unchanged fanin list.
        frame[id] = swept.report.const_of[id];
        continue;
      }
      frame[id] = simulator.value(mapped);
    }
  }
}

}  // namespace retest::sim
