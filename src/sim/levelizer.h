// Levelization: a topological order of the combinational part.
#pragma once

#include <vector>

#include "netlist/circuit.h"

namespace retest::sim {

/// Topological ordering data for one-pass combinational evaluation.
///
/// `order` lists every node exactly once such that each combinational
/// gate (and each OUTPUT pin) appears after all of its fanins, with the
/// convention that DFF *outputs* are sources (their Q value is part of
/// the present state) and DFF *data inputs* are sinks.  `level[id]`
/// gives the length of the longest combinational path from any source
/// to the node (sources have level 0).
struct Levelization {
  std::vector<netlist::NodeId> order;
  std::vector<int> level;
  /// Maximum level of any node = combinational depth of the circuit.
  int depth = 0;
  /// Nodes at each level; `level_count[l]` is the number of nodes with
  /// level l, for l in [0, depth].  Consumers that want contiguous
  /// per-level runs (the SoA hot path in sim/compiled.h) build their
  /// prefix sums from this instead of re-scanning `level`.
  std::vector<int> level_count;
};

/// Computes a levelization.  Requires netlist::Check to pass (throws on
/// combinational cycles).
Levelization Levelize(const netlist::Circuit& circuit);

}  // namespace retest::sim
