// Scalar 3-valued logic (0, 1, X).
//
// The unknown value X models the unknown initial state of DFFs in
// circuits without a global reset (paper Section II).  All evaluation
// is pessimistic in the standard way: X is "could be either".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/circuit.h"

namespace retest::sim {

/// A 3-valued logic value.
enum class V3 : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline char ToChar(V3 v) {
  switch (v) {
    case V3::k0: return '0';
    case V3::k1: return '1';
    default: return 'x';
  }
}

/// Parses '0'/'1' (anything else maps to X).
inline V3 FromChar(char c) {
  if (c == '0') return V3::k0;
  if (c == '1') return V3::k1;
  return V3::kX;
}

/// Renders a value vector as a compact string like "01x1".
std::string ToString(std::span<const V3> values);

/// Parses a string of '0'/'1'/'x' characters.
std::vector<V3> FromString(const std::string& text);

inline V3 Not3(V3 a) {
  if (a == V3::kX) return V3::kX;
  return a == V3::k0 ? V3::k1 : V3::k0;
}

inline V3 And3(V3 a, V3 b) {
  if (a == V3::k0 || b == V3::k0) return V3::k0;
  if (a == V3::k1 && b == V3::k1) return V3::k1;
  return V3::kX;
}

inline V3 Or3(V3 a, V3 b) {
  if (a == V3::k1 || b == V3::k1) return V3::k1;
  if (a == V3::k0 && b == V3::k0) return V3::k0;
  return V3::kX;
}

inline V3 Xor3(V3 a, V3 b) {
  if (a == V3::kX || b == V3::kX) return V3::kX;
  return a == b ? V3::k0 : V3::k1;
}

/// Evaluates a combinational gate of the given kind over 3-valued
/// fanin values.  `kind` must satisfy netlist::IsGate or be a constant.
V3 EvalGate3(netlist::NodeKind kind, std::span<const V3> fanin);

}  // namespace retest::sim
