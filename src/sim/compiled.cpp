#include "sim/compiled.h"

#include <algorithm>
#include <stdexcept>

#include "analyze/sweep.h"

namespace retest::sim {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

CompiledNetlist::CompiledNetlist(const netlist::Circuit& circuit)
    : CompiledNetlist(circuit, nullptr) {}

CompiledNetlist::CompiledNetlist(const netlist::Circuit& circuit,
                                 const analyze::SweepReport* prune_dead)
    : circuit_(&circuit), num_nodes_(circuit.size()) {
  const auto is_dead = [prune_dead](std::uint32_t id) {
    return prune_dead != nullptr &&
           prune_dead->dead[static_cast<size_t>(id)] != 0;
  };
  if (prune_dead != nullptr &&
      prune_dead->dead.size() != static_cast<size_t>(num_nodes_)) {
    throw std::invalid_argument(
        "CompiledNetlist: sweep report is for a different circuit");
  }
  const auto n = static_cast<size_t>(num_nodes_);
  const Levelization levels = Levelize(circuit);
  depth_ = levels.depth;

  kind_.resize(n);
  level_.assign(n, 0);
  pi_index_.assign(n, -1);
  fanin_begin_.assign(n + 1, 0);
  fanout_begin_.assign(n + 1, 0);

  size_t total_fanin = 0;
  for (NodeId id = 0; id < num_nodes_; ++id) {
    const Node& node = circuit.node(id);
    kind_[static_cast<size_t>(id)] = node.kind;
    level_[static_cast<size_t>(id)] = levels.level[static_cast<size_t>(id)];
    total_fanin += node.fanin.size();
  }
  // Fanin CSR in pin order; the fanout CSR is derived from it so the
  // consumer order is deterministic (by (sink, pin)), independent of
  // the Circuit's incremental fanout bookkeeping.
  fanin_.reserve(total_fanin);
  for (NodeId id = 0; id < num_nodes_; ++id) {
    fanin_begin_[static_cast<size_t>(id)] =
        static_cast<std::uint32_t>(fanin_.size());
    for (NodeId driver : circuit.node(id).fanin) {
      fanin_.push_back(static_cast<std::uint32_t>(driver));
    }
  }
  fanin_begin_[n] = static_cast<std::uint32_t>(fanin_.size());

  // Fanout edges into sweep-proven dead sinks are pruned: a dead
  // node's consumers are all dead too, so no live cone traversal can
  // miss anything through the missing edge.  Fanins stay complete.
  std::vector<std::uint32_t> degree(n, 0);
  for (NodeId sink = 0; sink < num_nodes_; ++sink) {
    if (is_dead(static_cast<std::uint32_t>(sink))) continue;
    for (std::uint32_t driver : fanins(static_cast<std::uint32_t>(sink))) {
      ++degree[driver];
    }
  }
  for (size_t id = 0; id < n; ++id) {
    fanout_begin_[id + 1] = fanout_begin_[id] + degree[id];
  }
  fanout_.resize(fanout_begin_[n]);
  std::vector<std::uint32_t> cursor(fanout_begin_.begin(),
                                    fanout_begin_.end() - 1);
  for (NodeId sink = 0; sink < num_nodes_; ++sink) {
    if (is_dead(static_cast<std::uint32_t>(sink))) continue;
    for (std::uint32_t driver : fanins(static_cast<std::uint32_t>(sink))) {
      fanout_[cursor[driver]++] = static_cast<std::uint32_t>(sink);
    }
  }

  // Level-contiguous evaluation schedule over gates and output pins.
  // Within a level the run is sorted by (kind, id): level order is the
  // only correctness requirement (every fanin sits at a strictly lower
  // level), and grouping by kind turns the evaluator's dispatch into
  // monotone batches.
  level_begin_.assign(static_cast<size_t>(depth_) + 2, 0);
  schedule_.reserve(n);
  for (NodeId id = 0; id < num_nodes_; ++id) {
    const NodeKind kind = kind_[static_cast<size_t>(id)];
    if (kind == NodeKind::kInput || kind == NodeKind::kDff ||
        kind == NodeKind::kConst0 || kind == NodeKind::kConst1) {
      continue;
    }
    if (is_dead(static_cast<std::uint32_t>(id))) {
      // No path to any PO: the value can never matter, so the
      // evaluator skips it entirely (values stay X / stale and are
      // never read — every consumer is dead as well).
      ++pruned_dead_;
      continue;
    }
    schedule_.push_back(static_cast<std::uint32_t>(id));
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (level_[a] != level_[b]) return level_[a] < level_[b];
              if (kind_[a] != kind_[b]) return kind_[a] < kind_[b];
              return a < b;
            });
  for (std::uint32_t id : schedule_) {
    ++level_begin_[static_cast<size_t>(level_[id]) + 1];
  }
  for (size_t l = 1; l < level_begin_.size(); ++l) {
    level_begin_[l] += level_begin_[l - 1];
  }

  inputs_.reserve(circuit.inputs().size());
  for (size_t i = 0; i < circuit.inputs().size(); ++i) {
    const NodeId id = circuit.inputs()[i];
    inputs_.push_back(static_cast<std::uint32_t>(id));
    pi_index_[static_cast<size_t>(id)] = static_cast<std::int32_t>(i);
  }
  outputs_.reserve(circuit.outputs().size());
  output_src_.reserve(circuit.outputs().size());
  for (NodeId id : circuit.outputs()) {
    outputs_.push_back(static_cast<std::uint32_t>(id));
    output_src_.push_back(
        static_cast<std::uint32_t>(circuit.node(id).fanin[0]));
  }
  dffs_.reserve(circuit.dffs().size());
  dff_data_.reserve(circuit.dffs().size());
  for (NodeId id : circuit.dffs()) {
    dffs_.push_back(static_cast<std::uint32_t>(id));
    dff_data_.push_back(static_cast<std::uint32_t>(circuit.node(id).fanin[0]));
  }
}

std::shared_ptr<const CompiledNetlist> Compile(
    const netlist::Circuit& circuit) {
  return std::make_shared<const CompiledNetlist>(circuit);
}

std::shared_ptr<const CompiledNetlist> Compile(
    const netlist::Circuit& circuit, const analyze::SweepReport* prune_dead) {
  return std::make_shared<const CompiledNetlist>(circuit, prune_dead);
}

}  // namespace retest::sim
