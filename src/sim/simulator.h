// Sequential 3-valued logic simulator.
//
// Steps a synchronous circuit one input vector at a time, starting from
// an all-X state unless told otherwise.  This is the "structural"
// (3-valued) simulation of the paper: a sequence that drives every DFF
// to a binary value under this simulator is a structural-based
// synchronizing sequence.
#pragma once

#include <span>
#include <vector>

#include "netlist/circuit.h"
#include "sim/levelizer.h"
#include "sim/logic3.h"

namespace retest::analyze {
struct SweptNetlist;  // analyze/sweep.h
}  // namespace retest::analyze

namespace retest::sim {

/// An input vector: one V3 per primary input, in Circuit::inputs order.
using InputVector = std::vector<V3>;
/// A sequence of input vectors applied on consecutive clock cycles.
using InputSequence = std::vector<InputVector>;

/// Sequential 3-valued simulator over a fixed circuit.
class Simulator {
 public:
  explicit Simulator(const netlist::Circuit& circuit);

  const netlist::Circuit& circuit() const { return *circuit_; }

  /// Resets every DFF to `init` (default: unknown).
  void Reset(V3 init = V3::kX);

  /// Overwrites the DFF state (Circuit::dffs order).
  void SetState(std::span<const V3> state);

  /// Current DFF state (Circuit::dffs order).
  std::vector<V3> State() const;

  /// True when every DFF holds a binary (non-X) value.
  bool StateIsBinary() const;

  /// Applies one input vector: evaluates the combinational logic, then
  /// clocks the DFFs.  Returns the primary output values observed
  /// *before* the clock edge (Mealy semantics).
  std::vector<V3> Step(std::span<const V3> inputs);

  /// Applies a whole sequence; returns the PO values of each step.
  std::vector<std::vector<V3>> Run(const InputSequence& sequence);

  /// Value currently on a node's output net (valid after a Step).
  V3 value(netlist::NodeId id) const {
    return values_[static_cast<size_t>(id)];
  }

 private:
  void EvaluateCombinational(std::span<const V3> inputs);

  const netlist::Circuit* circuit_;
  Levelization levels_;
  std::vector<V3> values_;  // per node
  std::vector<V3> state_;   // per DFF
};

/// Full per-node value trace of a good-machine run.
///
/// Records, for every frame t of a sequence, the value of every node's
/// output net (DFF nodes carry their pre-edge Q value, exactly what a
/// frame evaluator seeds from).  The cone-restricted fault simulator
/// shares one read-only Trace across all fault batches: any node
/// outside a batch's fanout cones behaves identically to the good
/// machine, so its value can be taken from here instead of being
/// re-evaluated.
class Trace {
 public:
  Trace() = default;
  /// Simulates `sequence` from the all-X state and records every frame.
  Trace(const netlist::Circuit& circuit, const InputSequence& sequence);
  /// Sweep-accelerated variant: simulates `swept.circuit` (one gate
  /// per live equivalence class) and expands each frame back to
  /// `original`'s node ids through `swept.node_map`.  Mapped nodes get
  /// exactly the value the plain constructor would record (the sweep's
  /// invariant, enforced by analyze::VerifySweep); dead nodes map to
  /// kNoNode and are recorded as X — safe because nothing live ever
  /// reads them.  `original` must be the circuit the sweep came from.
  Trace(const netlist::Circuit& original, const InputSequence& sequence,
        const analyze::SweptNetlist& swept);

  size_t num_frames() const { return frames_; }

  /// All node values at frame t, indexed by NodeId.
  std::span<const V3> frame(size_t t) const {
    return {values_.data() + t * num_nodes_, num_nodes_};
  }

  V3 value(size_t t, netlist::NodeId id) const {
    return values_[t * num_nodes_ + static_cast<size_t>(id)];
  }

  /// Primary-output values per frame (Circuit::outputs order), the
  /// same shape Simulator::Run returns.
  const std::vector<std::vector<V3>>& outputs() const { return outputs_; }

 private:
  size_t frames_ = 0;
  size_t num_nodes_ = 0;
  std::vector<V3> values_;  // frames_ x num_nodes_, frame-major
  std::vector<std::vector<V3>> outputs_;
};

}  // namespace retest::sim
