#include "sim/parallel.h"

#include <stdexcept>

namespace retest::sim {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

Word3 EvalGate64(NodeKind kind, std::span<const Word3> fanin) {
  switch (kind) {
    case NodeKind::kConst0:
      return Word3::Broadcast(V3::k0);
    case NodeKind::kConst1:
      return Word3::Broadcast(V3::k1);
    case NodeKind::kBuf:
      return fanin[0];
    case NodeKind::kNot:
      return Not64(fanin[0]);
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      Word3 acc = Word3::Broadcast(V3::k1);
      for (const Word3& w : fanin) acc = And64(acc, w);
      return kind == NodeKind::kAnd ? acc : Not64(acc);
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      Word3 acc = Word3::Broadcast(V3::k0);
      for (const Word3& w : fanin) acc = Or64(acc, w);
      return kind == NodeKind::kOr ? acc : Not64(acc);
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      Word3 acc = Word3::Broadcast(V3::k0);
      for (const Word3& w : fanin) acc = Xor64(acc, w);
      return kind == NodeKind::kXor ? acc : Not64(acc);
    }
    default:
      throw std::invalid_argument("EvalGate64: not a combinational kind");
  }
}

ParallelFrame::ParallelFrame(const netlist::Circuit& circuit)
    : circuit_(&circuit),
      levels_(Levelize(circuit)),
      values_(static_cast<size_t>(circuit.size())),
      by_node_(static_cast<size_t>(circuit.size())) {}

void ParallelFrame::SetInjections(std::span<const Injection> injections) {
  for (NodeId id : touched_nodes_) by_node_[static_cast<size_t>(id)].clear();
  touched_nodes_.clear();
  for (const Injection& inj : injections) {
    auto& list = by_node_[static_cast<size_t>(inj.node)];
    if (list.empty()) touched_nodes_.push_back(inj.node);
    list.push_back(inj);
  }
}

void ParallelFrame::Step(std::span<const V3> inputs,
                         std::vector<Word3>& state) {
  if (inputs.size() != static_cast<size_t>(circuit_->num_inputs()) ||
      state.size() != static_cast<size_t>(circuit_->num_dffs())) {
    throw std::invalid_argument("ParallelFrame::Step: width mismatch");
  }
  const auto& pis = circuit_->inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    values_[static_cast<size_t>(pis[i])] = Word3::Broadcast(inputs[i]);
  }
  const auto& dffs = circuit_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    values_[static_cast<size_t>(dffs[i])] = state[i];
  }
  // Output-stem injections on sources must be applied up front.
  auto apply_output_injections = [&](NodeId id) {
    for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
      if (inj.pin < 0) values_[static_cast<size_t>(id)].SetLane(inj.lane, inj.value);
    }
  };
  for (NodeId id : touched_nodes_) {
    const NodeKind kind = circuit_->node(id).kind;
    if (kind == NodeKind::kInput || kind == NodeKind::kDff) {
      apply_output_injections(id);
    }
  }

  std::vector<Word3> fanin_words;
  for (NodeId id : levels_.order) {
    const Node& node = circuit_->node(id);
    if (node.kind == NodeKind::kInput || node.kind == NodeKind::kDff) continue;
    fanin_words.clear();
    for (NodeId driver : node.fanin) {
      fanin_words.push_back(values_[static_cast<size_t>(driver)]);
    }
    // Branch (input-pin) injections modify only this gate's view.
    for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
      if (inj.pin >= 0) {
        fanin_words[static_cast<size_t>(inj.pin)].SetLane(inj.lane, inj.value);
      }
    }
    Word3 out = node.kind == NodeKind::kOutput
                    ? fanin_words[0]
                    : EvalGate64(node.kind, fanin_words);
    values_[static_cast<size_t>(id)] = out;
    apply_output_injections(id);
  }

  // Clock edge.
  for (size_t i = 0; i < dffs.size(); ++i) {
    const Node& dff = circuit_->node(dffs[i]);
    Word3 d = values_[static_cast<size_t>(dff.fanin[0])];
    // Branch injections on the DFF's data pin.
    for (const Injection& inj : by_node_[static_cast<size_t>(dffs[i])]) {
      if (inj.pin >= 0) d.SetLane(inj.lane, inj.value);
    }
    state[i] = d;
  }
}

}  // namespace retest::sim
