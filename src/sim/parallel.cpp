#include "sim/parallel.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/metrics.h"

namespace retest::sim {

using netlist::NodeKind;

namespace {

/// Shared gate function over an explicit fanin span.  Also the body of
/// the public EvalGateWide; kept as a local inline so the frame
/// evaluators pay no cross-TU call in their hot loops.
template <int W>
inline Vec3<W> EvalGateSpan(NodeKind kind, std::span<const Vec3<W>> fanin) {
  switch (kind) {
    case NodeKind::kConst0:
      return Vec3<W>::Broadcast(V3::k0);
    case NodeKind::kConst1:
      return Vec3<W>::Broadcast(V3::k1);
    case NodeKind::kBuf:
      return fanin[0];
    case NodeKind::kNot:
      return NotV(fanin[0]);
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      Vec3<W> acc = fanin[0];
      for (size_t i = 1; i < fanin.size(); ++i) acc = AndV(acc, fanin[i]);
      return kind == NodeKind::kAnd ? acc : NotV(acc);
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      Vec3<W> acc = fanin[0];
      for (size_t i = 1; i < fanin.size(); ++i) acc = OrV(acc, fanin[i]);
      return kind == NodeKind::kOr ? acc : NotV(acc);
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      Vec3<W> acc = fanin[0];
      for (size_t i = 1; i < fanin.size(); ++i) acc = XorV(acc, fanin[i]);
      return kind == NodeKind::kXor ? acc : NotV(acc);
    }
    default:
      throw std::invalid_argument("EvalGateWide: not a combinational kind");
  }
}

inline bool IsSource(NodeKind kind) {
  return kind == NodeKind::kInput || kind == NodeKind::kDff ||
         kind == NodeKind::kConst0 || kind == NodeKind::kConst1;
}

}  // namespace

template <int W>
Vec3<W> EvalGateWide(NodeKind kind, std::span<const Vec3<W>> fanin) {
  if (fanin.empty() && kind != NodeKind::kConst0 && kind != NodeKind::kConst1) {
    throw std::invalid_argument("EvalGateWide: empty fanin");
  }
  return EvalGateSpan<W>(kind, fanin);
}

template <int W>
WideTrace<W>::WideTrace(const Trace& trace) : frames_(trace.num_frames()) {
  if (frames_ == 0) return;
  num_nodes_ = trace.frame(0).size();
  words_.resize(frames_ * num_nodes_);
  const Vec3<W> broadcast[3] = {Vec3<W>::Broadcast(V3::k0),
                                Vec3<W>::Broadcast(V3::k1),
                                Vec3<W>::Broadcast(V3::kX)};
  for (size_t t = 0; t < frames_; ++t) {
    const std::span<const V3> frame = trace.frame(t);
    Vec3<W>* out = words_.data() + t * num_nodes_;
    for (size_t n = 0; n < num_nodes_; ++n) {
      switch (frame[n]) {
        case V3::k0: out[n] = broadcast[0]; break;
        case V3::k1: out[n] = broadcast[1]; break;
        default: out[n] = broadcast[2]; break;
      }
    }
  }
}

template <int W>
WideFrame<W>::WideFrame(const netlist::Circuit& circuit)
    : WideFrame(Compile(circuit)) {}

template <int W>
WideFrame<W>::WideFrame(std::shared_ptr<const CompiledNetlist> compiled)
    : compiled_(std::move(compiled)),
      values_(static_cast<size_t>(compiled_->num_nodes())),
      by_node_(static_cast<size_t>(compiled_->num_nodes())),
      in_cone_(static_cast<size_t>(compiled_->num_nodes()), 0) {
  all_outputs_.resize(compiled_->outputs().size());
  std::iota(all_outputs_.begin(), all_outputs_.end(), 0);
  active_outputs_ = all_outputs_;
  scheduled_.assign(static_cast<size_t>(compiled_->num_nodes()), 0);
  buckets_.resize(static_cast<size_t>(compiled_->depth()) + 1);
}

template <int W>
void WideFrame<W>::SetInjections(std::span<const Injection> injections) {
  for (std::uint32_t id : touched_nodes_) by_node_[id].clear();
  touched_nodes_.clear();
  active_lanes_ = LaneMask<W>::All();
  for (const Injection& inj : injections) {
    assert(inj.lane >= 0 && inj.lane < Vec3<W>::kLanes);
    auto& list = by_node_[static_cast<size_t>(inj.node)];
    if (list.empty()) {
      touched_nodes_.push_back(static_cast<std::uint32_t>(inj.node));
    }
    list.push_back(inj);
  }
  cone_mode_ = false;
  cone_size_ = 0;
  active_outputs_ = all_outputs_;
}

template <int W>
void WideFrame<W>::RestrictToInjectionCones() {
  in_cone_.assign(in_cone_.size(), 0);
  dirty_.assign(in_cone_.size(), 0);
  dirty_list_.clear();
  forced_.clear();
  cone_dffs_.clear();
  active_outputs_.clear();

  // Activity mask: forward reachability from every injection site.  A
  // branch fault (pin >= 0) perturbs the reading node's output; a stem
  // fault perturbs the node's own output — either way the site node is
  // the cone root.  Fanout edges naturally chain through DFFs: a DFF
  // whose D cone differs latches a faulty state, perturbing its Q
  // consumers on later frames.
  std::vector<std::uint32_t> worklist;
  for (std::uint32_t id : touched_nodes_) {
    if (!in_cone_[id]) {
      in_cone_[id] = 1;
      worklist.push_back(id);
    }
  }
  while (!worklist.empty()) {
    const std::uint32_t id = worklist.back();
    worklist.pop_back();
    for (std::uint32_t sink : compiled_->fanouts(id)) {
      if (!in_cone_[sink]) {
        in_cone_[sink] = 1;
        worklist.push_back(sink);
      }
    }
  }

  cone_size_ = 0;
  for (char mark : in_cone_) cone_size_ += mark;
  // Injected gates/POs must be (re)evaluated whenever any of their
  // lanes is still live, even on frames where no fanin is dirty.
  // Sources (PIs, DFFs, constants) are seeded instead.
  for (std::uint32_t id : touched_nodes_) {
    if (IsSource(compiled_->kind(id))) continue;
    LaneMask<W> mask;
    for (const Injection& inj : by_node_[id]) mask.set(inj.lane);
    forced_.emplace_back(id, mask);
  }
  const auto dffs = compiled_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    if (in_cone_[dffs[i]]) cone_dffs_.push_back(i);
  }
  const auto outputs = compiled_->outputs();
  for (size_t o = 0; o < outputs.size(); ++o) {
    if (in_cone_[outputs[o]]) active_outputs_.push_back(static_cast<int>(o));
  }
  cone_mode_ = true;
  RETEST_COUNTER_ADD("sim.cone_restrictions", "calls", "sim",
                     "RestrictToInjectionCones invocations", 1);
  RETEST_DIST_RECORD("sim.cone_size", "nodes", "sim",
                     "activity-mask size (nodes) per restriction",
                     cone_size_);
}

template <int W>
void WideFrame<W>::SeedSources(std::span<const V3> inputs) {
  const auto pis = compiled_->inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    values_[pis[i]] = Vec3<W>::Broadcast(inputs[i]);
  }
  // Constants are sources in the compiled schedule: seeded once per
  // frame, never evaluated.
  for (std::uint32_t id = 0;
       id < static_cast<std::uint32_t>(compiled_->num_nodes()); ++id) {
    const NodeKind kind = compiled_->kind(id);
    if (kind == NodeKind::kConst0) values_[id] = Vec3<W>::Broadcast(V3::k0);
    if (kind == NodeKind::kConst1) values_[id] = Vec3<W>::Broadcast(V3::k1);
  }
  // Output-stem injections on sources must be applied up front.
  for (std::uint32_t id : touched_nodes_) {
    if (!IsSource(compiled_->kind(id))) continue;
    for (const Injection& inj : by_node_[id]) {
      if (inj.pin < 0) values_[id].SetLane(inj.lane, inj.value);
    }
  }
}

template <int W>
Vec3<W> WideFrame<W>::EvalFromValues(std::uint32_t id) const {
  const auto fanin = compiled_->fanins(id);
  const Vec3<W>* v = values_.data();
  switch (compiled_->kind(id)) {
    case NodeKind::kOutput:
    case NodeKind::kBuf:
      return v[fanin[0]];
    case NodeKind::kNot:
      return NotV(v[fanin[0]]);
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      Vec3<W> acc = v[fanin[0]];
      for (size_t i = 1; i < fanin.size(); ++i) acc = AndV(acc, v[fanin[i]]);
      return compiled_->kind(id) == NodeKind::kAnd ? acc : NotV(acc);
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      Vec3<W> acc = v[fanin[0]];
      for (size_t i = 1; i < fanin.size(); ++i) acc = OrV(acc, v[fanin[i]]);
      return compiled_->kind(id) == NodeKind::kOr ? acc : NotV(acc);
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      Vec3<W> acc = v[fanin[0]];
      for (size_t i = 1; i < fanin.size(); ++i) acc = XorV(acc, v[fanin[i]]);
      return compiled_->kind(id) == NodeKind::kXor ? acc : NotV(acc);
    }
    default:
      throw std::logic_error("WideFrame: source node in schedule");
  }
}

template <int W>
void WideFrame<W>::EvalNodeInjected(std::uint32_t id) {
  const auto fanin = compiled_->fanins(id);
  fanin_scratch_.clear();
  for (std::uint32_t driver : fanin) fanin_scratch_.push_back(values_[driver]);
  // Branch (input-pin) injections modify only this gate's view.
  for (const Injection& inj : by_node_[id]) {
    if (inj.pin >= 0) {
      fanin_scratch_[static_cast<size_t>(inj.pin)].SetLane(inj.lane,
                                                           inj.value);
    }
  }
  const NodeKind kind = compiled_->kind(id);
  Vec3<W> out = kind == NodeKind::kOutput
                    ? fanin_scratch_[0]
                    : EvalGateSpan<W>(kind, fanin_scratch_);
  // Output-stem injections force the computed value.
  for (const Injection& inj : by_node_[id]) {
    if (inj.pin < 0) out.SetLane(inj.lane, inj.value);
  }
  values_[id] = out;
}

template <int W>
void WideFrame<W>::Validate(std::span<const V3> inputs,
                            const std::vector<Vec3<W>>& state) const {
  if (inputs.size() != compiled_->inputs().size() ||
      state.size() != compiled_->dffs().size()) {
    throw std::invalid_argument("WideFrame::Step: width mismatch");
  }
}

template <int W>
void WideFrame<W>::Step(std::span<const V3> inputs,
                        std::vector<Vec3<W>>& state) {
  Validate(inputs, state);
  const auto dffs = compiled_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) values_[dffs[i]] = state[i];
  SeedSources(inputs);
  for (std::uint32_t id : compiled_->schedule()) {
    if (by_node_[id].empty()) {
      values_[id] = EvalFromValues(id);
    } else {
      EvalNodeInjected(id);
    }
    ++gate_evals_;
  }
  // Clock edge: latch every DFF's D, with branch injections on the
  // data pin applied to the latched view only.
  for (size_t i = 0; i < dffs.size(); ++i) {
    Vec3<W> d = values_[compiled_->dff_data(i)];
    for (const Injection& inj : by_node_[dffs[i]]) {
      if (inj.pin >= 0) d.SetLane(inj.lane, inj.value);
    }
    state[i] = d;
  }
}

template <int W>
void WideFrame<W>::Step(std::span<const V3> inputs,
                        std::vector<Vec3<W>>& state,
                        std::span<const Vec3<W>> good_frame) {
  if (!cone_mode_) {
    throw std::logic_error(
        "WideFrame::Step(good_frame): call RestrictToInjectionCones first");
  }
  Validate(inputs, state);
  if (good_frame.size() != values_.size()) {
    throw std::invalid_argument("WideFrame::Step: good frame mismatch");
  }
  const Vec3<W>* good = good_frame.data();
  const LaneMask<W> live = active_lanes_;
  // Dropped lanes are clamped to the good machine wherever a vector
  // enters the frontier, so retired faults generate no events.
  auto clamp = [&](const Vec3<W>& v, std::uint32_t id) {
    const Vec3<W>& g = good[id];
    Vec3<W> r;
    for (int w = 0; w < W; ++w) {
      r.one[w] = (v.one[w] & live.bits[w]) | (g.one[w] & ~live.bits[w]);
      r.zero[w] = (v.zero[w] & live.bits[w]) | (g.zero[w] & ~live.bits[w]);
    }
    return r;
  };
  auto schedule_fanouts = [&](std::uint32_t id) {
    for (std::uint32_t sink : compiled_->fanouts(id)) {
      if (!in_cone_[sink] || scheduled_[sink]) continue;
      if (compiled_->kind(sink) == NodeKind::kDff) continue;  // latched
      scheduled_[sink] = 1;
      buckets_[static_cast<size_t>(compiled_->level(sink))].push_back(sink);
    }
  };
  auto mark = [&](std::uint32_t id) {
    const bool now = values_[id] != good[id];
    if (now && !dirty_[id]) dirty_list_.push_back(id);
    dirty_[id] = now;
    return now;
  };

  // Last frame's dirty flags are stale: a node off this frame's
  // frontier is clean by construction.
  for (std::uint32_t id : dirty_list_) dirty_[id] = 0;
  dirty_list_.clear();

  // Seed the frontier.  A cone DFF is dirty when some live lane
  // latched a value the good machine did not; an injected source is
  // dirty when the forced lane disagrees with the good value this
  // frame (fault excitation).
  const auto dffs = compiled_->dffs();
  for (size_t i : cone_dffs_) {
    const std::uint32_t id = dffs[i];
    values_[id] = clamp(state[i], id);
    if (mark(id)) schedule_fanouts(id);
  }
  for (std::uint32_t id : touched_nodes_) {
    const NodeKind kind = compiled_->kind(id);
    if (!IsSource(kind)) continue;
    // A non-DFF source's good word is its broadcast value itself.
    if (kind != NodeKind::kDff) values_[id] = good[id];
    for (const Injection& inj : by_node_[id]) {
      if (inj.pin < 0 && live.test(inj.lane)) {
        values_[id].SetLane(inj.lane, inj.value);
      }
    }
    if (mark(id)) schedule_fanouts(id);
  }
  for (const auto& [id, mask] : forced_) {
    if (mask.intersects(live) && !scheduled_[id]) {
      scheduled_[id] = 1;
      buckets_[static_cast<size_t>(compiled_->level(id))].push_back(id);
    }
  }

  // Drain the event queue level by level; a gate only ever schedules
  // strictly deeper sinks, so each bucket is complete when reached.
  for (auto& bucket : buckets_) {
    for (size_t bi = 0; bi < bucket.size(); ++bi) {
      const std::uint32_t id = bucket[bi];
      scheduled_[id] = 0;
      fanin_scratch_.clear();
      for (std::uint32_t driver : compiled_->fanins(id)) {
        fanin_scratch_.push_back(dirty_[driver] ? values_[driver]
                                                : good[driver]);
      }
      for (const Injection& inj : by_node_[id]) {
        if (inj.pin >= 0 && live.test(inj.lane)) {
          fanin_scratch_[static_cast<size_t>(inj.pin)].SetLane(inj.lane,
                                                               inj.value);
        }
      }
      const NodeKind kind = compiled_->kind(id);
      Vec3<W> out = kind == NodeKind::kOutput
                        ? fanin_scratch_[0]
                        : EvalGateSpan<W>(kind, fanin_scratch_);
      for (const Injection& inj : by_node_[id]) {
        if (inj.pin < 0 && live.test(inj.lane)) {
          out.SetLane(inj.lane, inj.value);
        }
      }
      values_[id] = clamp(out, id);
      if (mark(id)) schedule_fanouts(id);
      ++gate_evals_;
    }
    bucket.clear();
  }

  // Clock edge for cone registers only.
  for (size_t i : cone_dffs_) {
    const std::uint32_t d_node = compiled_->dff_data(i);
    Vec3<W> d = dirty_[d_node] ? values_[d_node] : good[d_node];
    for (const Injection& inj : by_node_[dffs[i]]) {
      if (inj.pin >= 0 && live.test(inj.lane)) {
        d.SetLane(inj.lane, inj.value);
      }
    }
    state[i] = d;
  }
}

template class WideTrace<1>;
template class WideTrace<4>;
template class WideTrace<8>;
template class WideFrame<1>;
template class WideFrame<4>;
template class WideFrame<8>;
template Vec3<1> EvalGateWide<1>(NodeKind, std::span<const Vec3<1>>);
template Vec3<4> EvalGateWide<4>(NodeKind, std::span<const Vec3<4>>);
template Vec3<8> EvalGateWide<8>(NodeKind, std::span<const Vec3<8>>);

}  // namespace retest::sim
