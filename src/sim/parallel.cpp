#include "sim/parallel.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/metrics.h"

namespace retest::sim {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

Word3 EvalGate64(NodeKind kind, std::span<const Word3> fanin) {
  switch (kind) {
    case NodeKind::kConst0:
      return Word3::Broadcast(V3::k0);
    case NodeKind::kConst1:
      return Word3::Broadcast(V3::k1);
    case NodeKind::kBuf:
      return fanin[0];
    case NodeKind::kNot:
      return Not64(fanin[0]);
    case NodeKind::kAnd:
    case NodeKind::kNand: {
      Word3 acc = Word3::Broadcast(V3::k1);
      for (const Word3& w : fanin) acc = And64(acc, w);
      return kind == NodeKind::kAnd ? acc : Not64(acc);
    }
    case NodeKind::kOr:
    case NodeKind::kNor: {
      Word3 acc = Word3::Broadcast(V3::k0);
      for (const Word3& w : fanin) acc = Or64(acc, w);
      return kind == NodeKind::kOr ? acc : Not64(acc);
    }
    case NodeKind::kXor:
    case NodeKind::kXnor: {
      Word3 acc = Word3::Broadcast(V3::k0);
      for (const Word3& w : fanin) acc = Xor64(acc, w);
      return kind == NodeKind::kXor ? acc : Not64(acc);
    }
    default:
      throw std::invalid_argument("EvalGate64: not a combinational kind");
  }
}

WordTrace::WordTrace(const Trace& trace) : frames_(trace.num_frames()) {
  if (frames_ == 0) return;
  num_nodes_ = trace.frame(0).size();
  words_.resize(frames_ * num_nodes_);
  for (size_t t = 0; t < frames_; ++t) {
    const std::span<const V3> frame = trace.frame(t);
    Word3* out = words_.data() + t * num_nodes_;
    for (size_t n = 0; n < num_nodes_; ++n) out[n] = Word3::Broadcast(frame[n]);
  }
}

ParallelFrame::ParallelFrame(const netlist::Circuit& circuit)
    : circuit_(&circuit),
      levels_(Levelize(circuit)),
      values_(static_cast<size_t>(circuit.size())),
      by_node_(static_cast<size_t>(circuit.size())),
      in_cone_(static_cast<size_t>(circuit.size()), 0) {
  all_outputs_.resize(static_cast<size_t>(circuit.num_outputs()));
  std::iota(all_outputs_.begin(), all_outputs_.end(), 0);
  active_outputs_ = all_outputs_;
  pi_index_.assign(static_cast<size_t>(circuit.size()), -1);
  const auto& pis = circuit.inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    pi_index_[static_cast<size_t>(pis[i])] = static_cast<int>(i);
  }
  scheduled_.assign(static_cast<size_t>(circuit.size()), 0);
  int num_levels = 0;
  for (int lvl : levels_.level) num_levels = std::max(num_levels, lvl + 1);
  buckets_.resize(static_cast<size_t>(num_levels));
}

void ParallelFrame::SetInjections(std::span<const Injection> injections) {
  for (NodeId id : touched_nodes_) by_node_[static_cast<size_t>(id)].clear();
  touched_nodes_.clear();
  active_lanes_ = ~0ull;
  for (const Injection& inj : injections) {
    auto& list = by_node_[static_cast<size_t>(inj.node)];
    if (list.empty()) touched_nodes_.push_back(inj.node);
    list.push_back(inj);
  }
  cone_mode_ = false;
  cone_size_ = 0;
  active_outputs_ = all_outputs_;
}

void ParallelFrame::RestrictToInjectionCones() {
  in_cone_.assign(in_cone_.size(), 0);
  dirty_.assign(in_cone_.size(), 0);
  dirty_list_.clear();
  forced_.clear();
  cone_dffs_.clear();
  active_outputs_.clear();

  // Activity mask: forward reachability from every injection site.  A
  // branch fault (pin >= 0) perturbs the reading node's output; a stem
  // fault perturbs the node's own output — either way the site node is
  // the cone root.  Fanout edges naturally chain through DFFs: a DFF
  // whose D cone differs latches a faulty state, perturbing its Q
  // consumers on later frames.
  std::vector<NodeId> worklist;
  for (NodeId id : touched_nodes_) {
    if (!in_cone_[static_cast<size_t>(id)]) {
      in_cone_[static_cast<size_t>(id)] = 1;
      worklist.push_back(id);
    }
  }
  while (!worklist.empty()) {
    const NodeId id = worklist.back();
    worklist.pop_back();
    for (NodeId sink : circuit_->node(id).fanout) {
      if (!in_cone_[static_cast<size_t>(sink)]) {
        in_cone_[static_cast<size_t>(sink)] = 1;
        worklist.push_back(sink);
      }
    }
  }

  cone_size_ = 0;
  for (char mark : in_cone_) cone_size_ += mark;
  // Injected gates/POs must be (re)evaluated whenever any of their
  // lanes is still live, even on frames where no fanin is dirty.
  for (NodeId id : touched_nodes_) {
    const NodeKind kind = circuit_->node(id).kind;
    if (kind == NodeKind::kInput || kind == NodeKind::kDff) continue;
    std::uint64_t mask = 0;
    for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
      mask |= 1ull << inj.lane;
    }
    forced_.emplace_back(id, mask);
  }
  const auto& dffs = circuit_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    if (in_cone_[static_cast<size_t>(dffs[i])]) cone_dffs_.push_back(i);
  }
  const auto& outputs = circuit_->outputs();
  for (size_t o = 0; o < outputs.size(); ++o) {
    if (in_cone_[static_cast<size_t>(outputs[o])]) {
      active_outputs_.push_back(static_cast<int>(o));
    }
  }
  cone_mode_ = true;
  RETEST_COUNTER_ADD("sim.cone_restrictions", "calls", "sim",
                     "RestrictToInjectionCones invocations", 1);
  RETEST_DIST_RECORD("sim.cone_size", "nodes", "sim",
                     "activity-mask size (nodes) per restriction",
                     cone_size_);
}

void ParallelFrame::SeedSources(std::span<const V3> inputs) {
  const auto& pis = circuit_->inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    values_[static_cast<size_t>(pis[i])] = Word3::Broadcast(inputs[i]);
  }
  // Output-stem injections on sources must be applied up front.
  for (NodeId id : touched_nodes_) {
    const NodeKind kind = circuit_->node(id).kind;
    if (kind != NodeKind::kInput && kind != NodeKind::kDff) continue;
    for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
      if (inj.pin < 0) {
        values_[static_cast<size_t>(id)].SetLane(inj.lane, inj.value);
      }
    }
  }
}

void ParallelFrame::EvalNode(NodeId id, std::vector<Word3>& fanin_words) {
  const Node& node = circuit_->node(id);
  fanin_words.clear();
  for (NodeId driver : node.fanin) {
    fanin_words.push_back(values_[static_cast<size_t>(driver)]);
  }
  // Branch (input-pin) injections modify only this gate's view.
  for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
    if (inj.pin >= 0) {
      fanin_words[static_cast<size_t>(inj.pin)].SetLane(inj.lane, inj.value);
    }
  }
  Word3 out = node.kind == NodeKind::kOutput ? fanin_words[0]
                                             : EvalGate64(node.kind, fanin_words);
  // Output-stem injections force the computed value.
  for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
    if (inj.pin < 0) out.SetLane(inj.lane, inj.value);
  }
  values_[static_cast<size_t>(id)] = out;
}

void ParallelFrame::Latch(std::vector<Word3>& state, size_t dff_index) {
  const NodeId id = circuit_->dffs()[dff_index];
  const Node& dff = circuit_->node(id);
  Word3 d = values_[static_cast<size_t>(dff.fanin[0])];
  // Branch injections on the DFF's data pin.
  for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
    if (inj.pin >= 0) d.SetLane(inj.lane, inj.value);
  }
  state[dff_index] = d;
}

void ParallelFrame::Validate(std::span<const V3> inputs,
                             const std::vector<Word3>& state) const {
  if (inputs.size() != static_cast<size_t>(circuit_->num_inputs()) ||
      state.size() != static_cast<size_t>(circuit_->num_dffs())) {
    throw std::invalid_argument("ParallelFrame::Step: width mismatch");
  }
}

void ParallelFrame::Step(std::span<const V3> inputs,
                         std::vector<Word3>& state) {
  Validate(inputs, state);
  const auto& dffs = circuit_->dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    values_[static_cast<size_t>(dffs[i])] = state[i];
  }
  SeedSources(inputs);
  for (NodeId id : levels_.order) {
    const NodeKind kind = circuit_->node(id).kind;
    if (kind == NodeKind::kInput || kind == NodeKind::kDff) continue;
    EvalNode(id, fanin_scratch_);
    ++gate_evals_;
  }
  for (size_t i = 0; i < dffs.size(); ++i) Latch(state, i);
}

void ParallelFrame::Step(std::span<const V3> inputs, std::vector<Word3>& state,
                         std::span<const Word3> good_frame) {
  if (!cone_mode_) {
    throw std::logic_error(
        "ParallelFrame::Step(good_frame): call RestrictToInjectionCones first");
  }
  Validate(inputs, state);
  if (good_frame.size() != values_.size()) {
    throw std::invalid_argument("ParallelFrame::Step: good frame mismatch");
  }
  const Word3* good = good_frame.data();
  const std::uint64_t live = active_lanes_;
  // Dropped lanes are clamped to the good machine wherever a word
  // enters the frontier, so retired faults generate no events.
  auto clamp = [&](Word3 v, NodeId id) {
    const Word3& g = good[static_cast<size_t>(id)];
    return Word3{(v.one & live) | (g.one & ~live),
                 (v.zero & live) | (g.zero & ~live)};
  };
  auto schedule_fanouts = [&](NodeId id) {
    for (NodeId sink : circuit_->node(id).fanout) {
      const size_t si = static_cast<size_t>(sink);
      if (!in_cone_[si] || scheduled_[si]) continue;
      if (circuit_->node(sink).kind == NodeKind::kDff) continue;  // latched
      scheduled_[si] = 1;
      buckets_[static_cast<size_t>(levels_.level[si])].push_back(sink);
    }
  };
  auto mark = [&](NodeId id) {
    const size_t i = static_cast<size_t>(id);
    const bool now = values_[i] != good[i];
    if (now && !dirty_[i]) dirty_list_.push_back(id);
    dirty_[i] = now;
    return now;
  };

  // Last frame's dirty flags are stale: a node off this frame's
  // frontier is clean by construction.
  for (NodeId id : dirty_list_) dirty_[static_cast<size_t>(id)] = 0;
  dirty_list_.clear();

  // Seed the frontier.  A cone DFF is dirty when some live lane
  // latched a value the good machine did not; an injected source is
  // dirty when the forced lane disagrees with the good value this
  // frame (fault excitation).
  const auto& dffs = circuit_->dffs();
  for (size_t i : cone_dffs_) {
    const NodeId id = dffs[i];
    values_[static_cast<size_t>(id)] = clamp(state[i], id);
    if (mark(id)) schedule_fanouts(id);
  }
  for (NodeId id : touched_nodes_) {
    const NodeKind kind = circuit_->node(id).kind;
    if (kind != NodeKind::kInput && kind != NodeKind::kDff) continue;
    // A PI's good word is the broadcast input itself.
    if (kind == NodeKind::kInput) {
      values_[static_cast<size_t>(id)] = good[static_cast<size_t>(id)];
    }
    for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
      if (inj.pin < 0 && (live >> inj.lane) & 1) {
        values_[static_cast<size_t>(id)].SetLane(inj.lane, inj.value);
      }
    }
    if (mark(id)) schedule_fanouts(id);
  }
  for (const auto& [id, mask] : forced_) {
    const size_t i = static_cast<size_t>(id);
    if ((mask & live) && !scheduled_[i]) {
      scheduled_[i] = 1;
      buckets_[static_cast<size_t>(levels_.level[i])].push_back(id);
    }
  }

  // Drain the event queue level by level; a gate only ever schedules
  // strictly deeper sinks, so each bucket is complete when reached.
  for (auto& bucket : buckets_) {
    for (size_t bi = 0; bi < bucket.size(); ++bi) {
      const NodeId id = bucket[bi];
      scheduled_[static_cast<size_t>(id)] = 0;
      const Node& node = circuit_->node(id);
      fanin_scratch_.clear();
      for (NodeId driver : node.fanin) {
        fanin_scratch_.push_back(dirty_[static_cast<size_t>(driver)]
                                     ? values_[static_cast<size_t>(driver)]
                                     : good[static_cast<size_t>(driver)]);
      }
      for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
        if (inj.pin >= 0 && (live >> inj.lane) & 1) {
          fanin_scratch_[static_cast<size_t>(inj.pin)].SetLane(inj.lane,
                                                               inj.value);
        }
      }
      Word3 out = node.kind == NodeKind::kOutput
                      ? fanin_scratch_[0]
                      : EvalGate64(node.kind, fanin_scratch_);
      for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
        if (inj.pin < 0 && (live >> inj.lane) & 1) {
          out.SetLane(inj.lane, inj.value);
        }
      }
      values_[static_cast<size_t>(id)] = clamp(out, id);
      if (mark(id)) schedule_fanouts(id);
      ++gate_evals_;
    }
    bucket.clear();
  }

  // Clock edge for cone registers only.
  for (size_t i : cone_dffs_) {
    const NodeId id = dffs[i];
    const NodeId d_node = circuit_->node(id).fanin[0];
    Word3 d = dirty_[static_cast<size_t>(d_node)]
                  ? values_[static_cast<size_t>(d_node)]
                  : good[static_cast<size_t>(d_node)];
    for (const Injection& inj : by_node_[static_cast<size_t>(id)]) {
      if (inj.pin >= 0 && (live >> inj.lane) & 1) {
        d.SetLane(inj.lane, inj.value);
      }
    }
    state[i] = d;
  }
}

}  // namespace retest::sim
