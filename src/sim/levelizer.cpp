#include "sim/levelizer.h"

#include <algorithm>
#include <stdexcept>

namespace retest::sim {

using netlist::Circuit;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

Levelization Levelize(const Circuit& circuit) {
  const size_t n = static_cast<size_t>(circuit.size());
  Levelization result;
  result.level.assign(n, 0);
  result.order.reserve(n);

  // Kahn's algorithm over combinational edges.  A DFF has no incoming
  // combinational edges (its data pin is a sink consumed next cycle).
  std::vector<int> pending(n, 0);
  for (NodeId id = 0; id < circuit.size(); ++id) {
    const Node& node = circuit.node(id);
    pending[static_cast<size_t>(id)] =
        node.kind == NodeKind::kDff ? 0 : static_cast<int>(node.fanin.size());
  }
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < circuit.size(); ++id) {
    if (pending[static_cast<size_t>(id)] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    result.order.push_back(id);
    for (NodeId sink : circuit.node(id).fanout) {
      if (circuit.node(sink).kind == NodeKind::kDff) continue;
      auto& count = pending[static_cast<size_t>(sink)];
      auto& lvl = result.level[static_cast<size_t>(sink)];
      lvl = std::max(lvl, result.level[static_cast<size_t>(id)] + 1);
      if (--count == 0) ready.push_back(sink);
    }
  }
  if (result.order.size() != n) {
    throw std::runtime_error("Levelize: combinational cycle in circuit '" +
                             circuit.name() + "'");
  }
  for (int lvl : result.level) result.depth = std::max(result.depth, lvl);
  result.level_count.assign(static_cast<size_t>(result.depth) + 1, 0);
  for (int lvl : result.level) ++result.level_count[static_cast<size_t>(lvl)];
  return result;
}

}  // namespace retest::sim
