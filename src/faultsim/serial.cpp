#include "faultsim/serial.h"

#include <stdexcept>

namespace retest::faultsim {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;
using sim::V3;

FaultySimulator::FaultySimulator(const netlist::Circuit& circuit,
                                 const fault::Fault& fault)
    : circuit_(&circuit),
      fault_(fault),
      levels_(sim::Levelize(circuit)),
      values_(static_cast<size_t>(circuit.size()), V3::kX),
      state_(static_cast<size_t>(circuit.num_dffs()), V3::kX) {}

void FaultySimulator::Reset() { state_.assign(state_.size(), V3::kX); }

void FaultySimulator::SetState(std::span<const V3> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("FaultySimulator::SetState: wrong width");
  }
  state_.assign(state.begin(), state.end());
}

std::vector<V3> FaultySimulator::Step(std::span<const V3> inputs) {
  const netlist::Circuit& circuit = *circuit_;
  if (inputs.size() != static_cast<size_t>(circuit.num_inputs())) {
    throw std::invalid_argument("FaultySimulator::Step: wrong input width");
  }
  const V3 forced = fault_.stuck_at_1 ? V3::k1 : V3::k0;

  const auto& pis = circuit.inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    values_[static_cast<size_t>(pis[i])] = inputs[i];
  }
  const auto& dffs = circuit.dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    values_[static_cast<size_t>(dffs[i])] = state_[i];
  }
  // Stem fault on a source (PI or DFF output).
  if (fault_.site.pin < 0) {
    const NodeKind kind = circuit.node(fault_.site.node).kind;
    if (kind == NodeKind::kInput || kind == NodeKind::kDff) {
      values_[static_cast<size_t>(fault_.site.node)] = forced;
    }
  }

  std::vector<V3> fanin_values;
  for (NodeId id : levels_.order) {
    const Node& node = circuit.node(id);
    if (node.kind == NodeKind::kInput || node.kind == NodeKind::kDff) continue;
    fanin_values.clear();
    for (NodeId driver : node.fanin) {
      fanin_values.push_back(values_[static_cast<size_t>(driver)]);
    }
    if (fault_.site.node == id && fault_.site.pin >= 0) {
      fanin_values[static_cast<size_t>(fault_.site.pin)] = forced;
    }
    V3 out = node.kind == NodeKind::kOutput
                 ? fanin_values[0]
                 : sim::EvalGate3(node.kind, fanin_values);
    if (fault_.site.node == id && fault_.site.pin < 0) out = forced;
    values_[static_cast<size_t>(id)] = out;
  }

  std::vector<V3> outputs;
  outputs.reserve(circuit.outputs().size());
  for (NodeId id : circuit.outputs()) {
    outputs.push_back(values_[static_cast<size_t>(id)]);
  }
  for (size_t i = 0; i < dffs.size(); ++i) {
    const Node& dff = circuit.node(dffs[i]);
    V3 d = values_[static_cast<size_t>(dff.fanin[0])];
    if (fault_.site.node == dffs[i] && fault_.site.pin == 0) d = forced;
    state_[i] = d;
  }
  return outputs;
}

std::vector<Detection> SimulateSerial(const netlist::Circuit& circuit,
                                      std::span<const fault::Fault> faults,
                                      const sim::InputSequence& sequence) {
  // Good-machine responses once.
  sim::Simulator good(circuit);
  good.Reset();
  const auto good_outputs = good.Run(sequence);

  std::vector<Detection> detections(faults.size());
  for (size_t f = 0; f < faults.size(); ++f) {
    FaultySimulator faulty(circuit, faults[f]);
    for (size_t t = 0; t < sequence.size(); ++t) {
      const auto outputs = faulty.Step(sequence[t]);
      for (size_t o = 0; o < outputs.size(); ++o) {
        const V3 g = good_outputs[t][o];
        const V3 b = outputs[o];
        if (g != V3::kX && b != V3::kX && g != b) {
          detections[f].detected = true;
          detections[f].time = static_cast<int>(t);
          break;
        }
      }
      if (detections[f].detected) break;
    }
  }
  return detections;
}

}  // namespace retest::faultsim
