#include "faultsim/serial.h"

#include <algorithm>
#include <stdexcept>

namespace retest::faultsim {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;
using sim::V3;

FaultySimulator::FaultySimulator(const netlist::Circuit& circuit,
                                 const fault::Fault& fault)
    : circuit_(&circuit),
      fault_(fault),
      levels_(sim::Levelize(circuit)),
      values_(static_cast<size_t>(circuit.size()), V3::kX),
      state_(static_cast<size_t>(circuit.num_dffs()), V3::kX) {
  size_t max_arity = 0;
  for (NodeId id : levels_.order) {
    max_arity = std::max(max_arity, circuit.node(id).fanin.size());
  }
  fanin_values_.reserve(max_arity);
  outputs_.reserve(circuit.outputs().size());
}

void FaultySimulator::Reset() { state_.assign(state_.size(), V3::kX); }

void FaultySimulator::SetFault(const fault::Fault& fault) {
  fault_ = fault;
  Reset();
}

void FaultySimulator::SetState(std::span<const V3> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("FaultySimulator::SetState: wrong width");
  }
  state_.assign(state.begin(), state.end());
}

const std::vector<V3>& FaultySimulator::Step(std::span<const V3> inputs) {
  const netlist::Circuit& circuit = *circuit_;
  if (inputs.size() != static_cast<size_t>(circuit.num_inputs())) {
    throw std::invalid_argument("FaultySimulator::Step: wrong input width");
  }
  const V3 forced = fault_.stuck_at_1 ? V3::k1 : V3::k0;

  const auto& pis = circuit.inputs();
  for (size_t i = 0; i < pis.size(); ++i) {
    values_[static_cast<size_t>(pis[i])] = inputs[i];
  }
  const auto& dffs = circuit.dffs();
  for (size_t i = 0; i < dffs.size(); ++i) {
    values_[static_cast<size_t>(dffs[i])] = state_[i];
  }
  // Stem fault on a source (PI or DFF output).
  if (fault_.site.pin < 0) {
    const NodeKind kind = circuit.node(fault_.site.node).kind;
    if (kind == NodeKind::kInput || kind == NodeKind::kDff) {
      values_[static_cast<size_t>(fault_.site.node)] = forced;
    }
  }

  for (NodeId id : levels_.order) {
    const Node& node = circuit.node(id);
    if (node.kind == NodeKind::kInput || node.kind == NodeKind::kDff) continue;
    fanin_values_.clear();
    for (NodeId driver : node.fanin) {
      fanin_values_.push_back(values_[static_cast<size_t>(driver)]);
    }
    if (fault_.site.node == id && fault_.site.pin >= 0) {
      fanin_values_[static_cast<size_t>(fault_.site.pin)] = forced;
    }
    V3 out = node.kind == NodeKind::kOutput
                 ? fanin_values_[0]
                 : sim::EvalGate3(node.kind, fanin_values_);
    if (fault_.site.node == id && fault_.site.pin < 0) out = forced;
    values_[static_cast<size_t>(id)] = out;
  }

  outputs_.clear();
  for (NodeId id : circuit.outputs()) {
    outputs_.push_back(values_[static_cast<size_t>(id)]);
  }
  for (size_t i = 0; i < dffs.size(); ++i) {
    const Node& dff = circuit.node(dffs[i]);
    V3 d = values_[static_cast<size_t>(dff.fanin[0])];
    if (fault_.site.node == dffs[i] && fault_.site.pin == 0) d = forced;
    state_[i] = d;
  }
  return outputs_;
}

namespace {

/// Runs one faulty machine over the whole sequence, returning at the
/// first frame whose response contradicts the good machine (both
/// binary, different values).
Detection SimulateOneFault(FaultySimulator& faulty,
                           const std::vector<std::vector<V3>>& good_outputs,
                           const sim::InputSequence& sequence) {
  for (size_t t = 0; t < sequence.size(); ++t) {
    const auto& outputs = faulty.Step(sequence[t]);
    for (size_t o = 0; o < outputs.size(); ++o) {
      const V3 g = good_outputs[t][o];
      const V3 b = outputs[o];
      if (g != V3::kX && b != V3::kX && g != b) {
        return {true, static_cast<int>(t)};
      }
    }
  }
  return {};
}

}  // namespace

std::vector<Detection> SimulateSerial(const netlist::Circuit& circuit,
                                      std::span<const fault::Fault> faults,
                                      const sim::InputSequence& sequence) {
  // Good-machine responses once.
  sim::Simulator good(circuit);
  good.Reset();
  const auto good_outputs = good.Run(sequence);

  std::vector<Detection> detections(faults.size());
  if (faults.empty()) return detections;
  // One simulator re-armed per fault: levelization and buffers are
  // built once for the whole universe.
  FaultySimulator faulty(circuit, faults[0]);
  for (size_t f = 0; f < faults.size(); ++f) {
    faulty.SetFault(faults[f]);
    detections[f] = SimulateOneFault(faulty, good_outputs, sequence);
  }
  return detections;
}

}  // namespace retest::faultsim
