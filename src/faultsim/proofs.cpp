#include "faultsim/proofs.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <optional>

#include "analyze/sweep.h"
#include "core/metrics.h"
#include "core/thread_pool.h"
#include "core/trace.h"
#include "fault/collapse.h"
#include "sim/compiled.h"
#include "sim/levelizer.h"
#include "sim/parallel.h"
#include "sim/simd.h"

namespace retest::faultsim {

using sim::LaneMask;
using sim::V3;
using sim::Vec3;

namespace {

/// Fault order that maximizes cone sharing inside a lane group: sites
/// are visited in levelized topological position, so the faults of one
/// batch sit close together and the union of their fanout cones stays
/// near the size of a single cone.
std::vector<size_t> BatchOrder(const netlist::Circuit& circuit,
                               std::span<const fault::Fault> faults,
                               bool sort_faults) {
  std::vector<size_t> order(faults.size());
  std::iota(order.begin(), order.end(), 0);
  if (!sort_faults) return order;
  const sim::Levelization levels = sim::Levelize(circuit);
  std::vector<int> position(static_cast<size_t>(circuit.size()), 0);
  for (size_t p = 0; p < levels.order.size(); ++p) {
    position[static_cast<size_t>(levels.order[p])] = static_cast<int>(p);
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const fault::Fault& fa = faults[a];
    const fault::Fault& fb = faults[b];
    const int pa = position[static_cast<size_t>(fa.site.node)];
    const int pb = position[static_cast<size_t>(fb.site.node)];
    if (pa != pb) return pa < pb;
    if (fa.site.pin != fb.site.pin) return fa.site.pin < fb.site.pin;
    return fa.stuck_at_1 < fb.stuck_at_1;
  });
  return order;
}

/// Per-worker reusable scratch: one frame evaluator and state vector,
/// plus local work counters merged after the parallel loop.
template <int W>
struct WorkerScratch {
  std::optional<sim::WideFrame<W>> frame;
  std::vector<Vec3<W>> state;
  long frames_evaluated = 0;
};

/// The batch loop at one lane width.  All batches evaluate the shared
/// compiled netlist and (in cone mode) the shared good-machine trace;
/// detections land in `result.detections` at input positions, so the
/// outcome is independent of batching, threading and W.
template <int W>
void RunBatches(const netlist::Circuit& circuit,
                std::span<const fault::Fault> faults,
                const sim::InputSequence& sequence,
                const ProofsOptions& options,
                const std::shared_ptr<const sim::CompiledNetlist>& compiled,
                const sim::Trace* trace,
                const std::vector<std::vector<V3>>& good_outputs,
                const std::vector<size_t>& order, ProofsResult& result) {
  constexpr int kLanes = Vec3<W>::kLanes;
  std::optional<sim::WideTrace<W>> wide_trace;
  if (options.cone_restricted) wide_trace.emplace(*trace);

  const size_t num_batches =
      (faults.size() + static_cast<size_t>(kLanes) - 1) /
      static_cast<size_t>(kLanes);
  const int requested = core::ResolveThreadCount(options.num_threads);
  const int num_threads = static_cast<int>(
      std::min<size_t>(num_batches, static_cast<size_t>(requested)));
  result.threads_used = num_threads;
  result.lanes = kLanes;

  const size_t num_dffs = static_cast<size_t>(circuit.num_dffs());
  std::vector<WorkerScratch<W>> scratch(static_cast<size_t>(num_threads));
  core::ThreadPool pool(num_threads);
  pool.ParallelFor(num_batches, [&](int worker, size_t batch) {
    RETEST_TRACE_SPAN(batch_span, "faultsim.batch");
    RETEST_SCOPED_TIMER(batch_timer, "faultsim.batch_ms", "faultsim",
                        "wall time of one fault batch");
    WorkerScratch<W>& ws = scratch[static_cast<size_t>(worker)];
    if (!ws.frame) ws.frame.emplace(compiled);
    sim::WideFrame<W>& frame = *ws.frame;
    const long frames_before = ws.frames_evaluated;

    const size_t base = batch * static_cast<size_t>(kLanes);
    const int lanes = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(kLanes), faults.size() - base));
    std::vector<sim::Injection> injections;
    injections.reserve(static_cast<size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      injections.push_back(fault::ToInjection(
          faults[order[base + static_cast<size_t>(lane)]], lane));
    }
    frame.SetInjections(injections);
    if (options.cone_restricted) {
      frame.RestrictToInjectionCones();
      RETEST_DIST_RECORD(
          "faultsim.cone_activity_ratio", "ratio", "faultsim",
          "batch activity-mask size / circuit size",
          static_cast<double>(frame.cone_size()) /
              static_cast<double>(std::max(1, circuit.size())));
    }

    ws.state.assign(num_dffs, Vec3<W>{});  // all-X initial state
    const LaneMask<W> lane_mask = LaneMask<W>::FirstN(lanes);
    LaneMask<W> undetected = lane_mask;

    for (size_t t = 0; t < sequence.size(); ++t) {
      if (options.cone_restricted) {
        frame.Step(sequence[t], ws.state, wide_trace->frame(t));
      } else {
        frame.Step(sequence[t], ws.state);
      }
      ++ws.frames_evaluated;
      const LaneMask<W> before = undetected;
      for (int o : frame.active_outputs()) {
        const netlist::NodeId out_node =
            circuit.outputs()[static_cast<size_t>(o)];
        // Event-driven mode only computes dirty words; a clean output
        // matches the good machine in every lane, so nothing to scan.
        if (options.cone_restricted && !frame.dirty(out_node)) continue;
        const V3 g = good_outputs[t][static_cast<size_t>(o)];
        if (g == V3::kX) continue;
        const Vec3<W>& w = frame.value(out_node);
        for (int k = 0; k < W; ++k) {
          // Faulty machine must be binary and complementary.
          const std::uint64_t differs =
              (g == V3::k1 ? w.zero[static_cast<size_t>(k)]
                           : w.one[static_cast<size_t>(k)]);
          std::uint64_t newly =
              differs & undetected.bits[static_cast<size_t>(k)];
          while (newly != 0) {
            const int lane = k * 64 + std::countr_zero(newly);
            newly &= newly - 1;
            auto& detection =
                result.detections[order[base + static_cast<size_t>(lane)]];
            detection.detected = true;
            detection.time = static_cast<int>(t);
            undetected.reset(lane);
          }
        }
      }
      if (options.drop_detected) {
        if (!undetected.any()) break;
        // PROOFS fault dropping: retire detected lanes so they stop
        // generating events inside the cone.
        const LaneMask<W> dropped = before & ~undetected;
        if (dropped.any() && options.cone_restricted) {
          frame.DropLanes(dropped);
        }
      }
    }

    const int detected_in_batch = (lane_mask & ~undetected).count();
    RETEST_COUNTER_ADD("faultsim.batches", "batches", "faultsim",
                       "fault batches simulated", 1);
    RETEST_COUNTER_ADD("faultsim.frames_evaluated", "frames", "faultsim",
                       "circuit frames evaluated across batches",
                       ws.frames_evaluated - frames_before);
    RETEST_COUNTER_ADD("faultsim.faults_detected", "faults", "faultsim",
                       "faults detected by PROOFS", detected_in_batch);
    if (options.drop_detected) {
      RETEST_DIST_RECORD("faultsim.dropped_per_batch", "faults", "faultsim",
                         "faults dropped (detected) per batch",
                         detected_in_batch);
    }
  });

  for (const WorkerScratch<W>& ws : scratch) {
    result.frames_evaluated += ws.frames_evaluated;
    if (ws.frame) result.gate_evals += ws.frame->gate_evals();
  }
}

}  // namespace

ProofsResult SimulateProofs(const netlist::Circuit& circuit,
                            std::span<const fault::Fault> faults,
                            const sim::InputSequence& sequence,
                            const ProofsOptions& options) {
  RETEST_TRACE_SPAN(run_span, "faultsim.simulate");
  ProofsResult result;
  result.detections.assign(faults.size(), {});
  result.lanes = 64 * sim::ResolveLaneWords(options.lane_words);
  if (faults.empty() || sequence.empty()) return result;
  RETEST_COUNTER_ADD("faultsim.runs", "runs", "faultsim",
                     "SimulateProofs invocations", 1);
  RETEST_COUNTER_ADD("faultsim.faults_simulated", "faults", "faultsim",
                     "faults handed to SimulateProofs",
                     static_cast<long>(faults.size()));

  // Structural sweep (docs/SWEEP.md).  `report` measures and changes
  // nothing; `on` applies only the faulty-machine-sound pieces: faults
  // proven undetected statically keep their default Detection (the
  // same verdict simulation would assign), the good trace runs on the
  // reduced circuit, and the compiled image drops dead nodes.  Merged
  // evaluation of FAULTY machines is never attempted — a fault breaks
  // the structural-equivalence premise.
  const analyze::SweepMode sweep_mode =
      analyze::ResolveSweepMode(options.sweep);
  std::optional<analyze::SweptNetlist> swept;
  std::vector<fault::Fault> kept_faults;
  std::vector<size_t> kept_positions;
  if (sweep_mode == analyze::SweepMode::kReport) {
    analyze::AnalyzeSweep(circuit);  // sweep.* metrics only
  } else if (sweep_mode == analyze::SweepMode::kOn) {
    swept.emplace(analyze::BuildSweptNetlist(circuit));
    const fault::SweepResolution resolution =
        fault::ResolveFaultsWithSweep(circuit, swept->report, faults);
    kept_faults.reserve(faults.size());
    kept_positions.reserve(faults.size());
    for (size_t i = 0; i < faults.size(); ++i) {
      if (resolution.statically_undetected[i] != 0) continue;
      kept_faults.push_back(faults[i]);
      kept_positions.push_back(i);
    }
    RETEST_COUNTER_ADD("sweep.faults_static_resolved", "faults", "sweep",
                       "faults proven undetected without simulation",
                       static_cast<long>(faults.size() - kept_faults.size()));
  }
  const std::span<const fault::Fault> active =
      swept ? std::span<const fault::Fault>(kept_faults) : faults;
  if (active.empty()) return result;  // everything resolved statically

  // Good-machine responses once, shared read-only by every batch.  The
  // cone-restricted mode needs the full per-node trace (non-cone values
  // are seeded from it); full evaluation only needs the PO responses.
  // Under sweep the trace is simulated on the reduced circuit and
  // expanded through the node map — identical values for every live
  // node, and PO responses identical outright.
  std::optional<sim::Trace> trace;
  std::vector<std::vector<V3>> good_po;
  {
    RETEST_TRACE_SPAN(good_span, "faultsim.good_trace");
    if (options.cone_restricted) {
      if (swept) {
        trace.emplace(circuit, sequence, *swept);
      } else {
        trace.emplace(circuit, sequence);
      }
    } else {
      sim::Simulator good(swept ? swept->circuit : circuit);
      good.Reset();
      good_po = good.Run(sequence);
    }
  }
  const auto& good_outputs =
      options.cone_restricted ? trace->outputs() : good_po;

  const std::vector<size_t> order =
      BatchOrder(circuit, active, options.sort_faults);
  const std::shared_ptr<const sim::CompiledNetlist> compiled =
      sim::Compile(circuit, swept ? &swept->report : nullptr);

  // Under sweep the batch loop runs over the kept (unresolved) faults;
  // its detections are scattered back to input positions afterwards.
  ProofsResult core;
  ProofsResult* sink = &result;
  if (swept) {
    core.detections.assign(active.size(), {});
    sink = &core;
  }
  switch (sim::ResolveLaneWords(options.lane_words)) {
    case 8:
      RunBatches<8>(circuit, active, sequence, options, compiled,
                    trace ? &*trace : nullptr, good_outputs, order, *sink);
      break;
    case 4:
      RunBatches<4>(circuit, active, sequence, options, compiled,
                    trace ? &*trace : nullptr, good_outputs, order, *sink);
      break;
    default:
      RunBatches<1>(circuit, active, sequence, options, compiled,
                    trace ? &*trace : nullptr, good_outputs, order, *sink);
      break;
  }
  if (swept) {
    for (size_t i = 0; i < kept_positions.size(); ++i) {
      result.detections[kept_positions[i]] = core.detections[i];
    }
    result.frames_evaluated = core.frames_evaluated;
    result.gate_evals = core.gate_evals;
    result.threads_used = core.threads_used;
    result.lanes = core.lanes;
  }
  RETEST_COUNTER_ADD("faultsim.gate_evals", "node-evals", "faultsim",
                     "lane-wide node evaluations performed",
                     result.gate_evals);
  return result;
}

}  // namespace retest::faultsim
