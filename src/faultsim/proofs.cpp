#include "faultsim/proofs.h"

#include <algorithm>
#include <bit>

#include "sim/parallel.h"

namespace retest::faultsim {

using sim::V3;
using sim::Word3;

ProofsResult SimulateProofs(const netlist::Circuit& circuit,
                            std::span<const fault::Fault> faults,
                            const sim::InputSequence& sequence,
                            const ProofsOptions& options) {
  ProofsResult result;
  result.detections.assign(faults.size(), {});
  if (faults.empty() || sequence.empty()) return result;

  // Good-machine responses once.
  sim::Simulator good(circuit);
  good.Reset();
  const auto good_outputs = good.Run(sequence);

  sim::ParallelFrame frame(circuit);
  const size_t num_dffs = static_cast<size_t>(circuit.num_dffs());
  const auto& outputs = circuit.outputs();

  for (size_t base = 0; base < faults.size(); base += 64) {
    const int lanes = static_cast<int>(std::min<size_t>(64, faults.size() - base));
    std::vector<sim::Injection> injections;
    injections.reserve(static_cast<size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      injections.push_back(fault::ToInjection(faults[base + static_cast<size_t>(lane)], lane));
    }
    frame.SetInjections(injections);

    std::vector<Word3> state(num_dffs, Word3{});  // all-X initial state
    const std::uint64_t lane_mask =
        lanes == 64 ? ~0ull : ((1ull << lanes) - 1);
    std::uint64_t undetected = lane_mask;

    for (size_t t = 0; t < sequence.size(); ++t) {
      frame.Step(sequence[t], state);
      ++result.frames_evaluated;
      for (size_t o = 0; o < outputs.size(); ++o) {
        const V3 g = good_outputs[t][o];
        if (g == V3::kX) continue;
        const Word3& w = frame.value(outputs[o]);
        // Faulty machine must be binary and complementary.
        const std::uint64_t differs = (g == V3::k1 ? w.zero : w.one);
        std::uint64_t newly = differs & undetected;
        while (newly != 0) {
          const int lane = std::countr_zero(newly);
          newly &= newly - 1;
          auto& detection = result.detections[base + static_cast<size_t>(lane)];
          detection.detected = true;
          detection.time = static_cast<int>(t);
          undetected &= ~(1ull << lane);
        }
      }
      if (options.drop_detected && undetected == 0) break;
    }
  }
  return result;
}

}  // namespace retest::faultsim
