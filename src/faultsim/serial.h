// Serial (one-fault-at-a-time) sequential fault simulator.
//
// An independent scalar reference implementation used to cross-check
// the 64-way PROOFS-style engine and by small worked examples.  Both
// engines implement the same semantics: the faulty machine starts from
// an all-X state with the fault injected from time 0; a fault is
// detected at time t when some primary output is binary in both the
// good and faulty machine and the values differ.
#pragma once

#include <vector>

#include "fault/fault.h"
#include "sim/simulator.h"

namespace retest::faultsim {

/// Per-fault outcome of simulating a test sequence.
struct Detection {
  bool detected = false;
  int time = -1;  ///< First vector index at which the fault was seen.

  friend bool operator==(const Detection&, const Detection&) = default;
};

/// Simulates `sequence` on the good machine and on each faulty machine
/// in turn.  Returns one Detection per fault in `faults` order.
std::vector<Detection> SimulateSerial(const netlist::Circuit& circuit,
                                      std::span<const fault::Fault> faults,
                                      const sim::InputSequence& sequence);

/// Scalar 3-valued sequential simulator with one injected fault;
/// exposed for examples that want to inspect faulty-machine states
/// (e.g. the paper's Example 2).
class FaultySimulator {
 public:
  FaultySimulator(const netlist::Circuit& circuit, const fault::Fault& fault);

  /// Resets every DFF to X.
  void Reset();

  /// Re-arms the simulator for a different fault on the same circuit
  /// and resets the state (reuses the levelization and buffers).
  void SetFault(const fault::Fault& fault);

  /// Overwrites the faulty machine's DFF state (Circuit::dffs order).
  void SetState(std::span<const sim::V3> state);

  /// Applies one vector; returns faulty-machine PO values.  The
  /// returned buffer is owned by the simulator and overwritten by the
  /// next Step.
  const std::vector<sim::V3>& Step(std::span<const sim::V3> inputs);

  /// Current faulty-machine DFF state.
  const std::vector<sim::V3>& state() const { return state_; }

 private:
  const netlist::Circuit* circuit_;
  fault::Fault fault_;
  sim::Levelization levels_;
  std::vector<sim::V3> values_;
  std::vector<sim::V3> state_;
  // Step scratch, sized once so the per-clock hot loop never allocates.
  std::vector<sim::V3> fanin_values_;
  std::vector<sim::V3> outputs_;
};

}  // namespace retest::faultsim
