// PROOFS-style sequential fault simulator.
//
// Simulates 64 faulty machines per pass using the bit-parallel 3-valued
// engine (Niermann/Cheng/Patel, DAC 1990 — the simulator the paper's
// Section V.C experiments used).  Faults are dropped from further work
// once detected; each faulty machine keeps its own DFF state across the
// whole sequence.
#pragma once

#include <span>
#include <vector>

#include "fault/fault.h"
#include "faultsim/serial.h"
#include "sim/simulator.h"

namespace retest::faultsim {

/// Knobs for the parallel fault simulator.
struct ProofsOptions {
  /// Stop simulating a 64-fault group once all its faults are detected.
  bool drop_detected = true;
};

/// Aggregate result of a fault-simulation run.
struct ProofsResult {
  /// One entry per fault, in input order.
  std::vector<Detection> detections;
  /// Total circuit-frame evaluations performed (deterministic work
  /// measure; 64 machines per frame).
  long frames_evaluated = 0;

  int num_detected() const {
    int count = 0;
    for (const Detection& d : detections) count += d.detected ? 1 : 0;
    return count;
  }
};

/// Fault simulates `sequence` over `faults` (64 per pass).
ProofsResult SimulateProofs(const netlist::Circuit& circuit,
                            std::span<const fault::Fault> faults,
                            const sim::InputSequence& sequence,
                            const ProofsOptions& options = {});

}  // namespace retest::faultsim
