// PROOFS-style sequential fault simulator, SIMD-wide.
//
// Simulates 64*W faulty machines per pass using the bit-parallel
// 3-valued engine (Niermann/Cheng/Patel, DAC 1990 — the simulator the
// paper's Section V.C experiments used; W is the SIMD lane-group width
// from sim/simd.h: 64, 256 or 512 faults per pass).  Faults are
// dropped from further work once detected; each faulty machine keeps
// its own DFF state across the whole sequence.
//
// Two PROOFS insights drive the performance of the default
// configuration:
//  - cone restriction: a fault can only perturb values inside the
//    structural fanout cone of its site (transitive through DFFs), so
//    each fault batch evaluates only the union of its cones and seeds
//    everything else from a shared read-only good-machine trace;
//  - batch locality: collapsed faults are ordered by the topological
//    position of their site before batching, so faults sharing a word
//    share cones and the union stays small.  Wider lanes amortize the
//    shared cone-union work over more faults per evaluation.
// All workers evaluate one shared, immutable CompiledNetlist
// (sim/compiled.h) — the flattened SoA image of the circuit — instead
// of walking per-node heap vectors.  Independent batches are
// dispatched across a thread pool (ProofsOptions::num_threads / the
// REPRO_THREADS env override).
//
// Thread-safety and determinism contract (docs/ARCHITECTURE.md,
// docs/SIMD.md):
//  - SimulateProofs is safe to call concurrently from multiple threads
//    (it shares no mutable state between runs), and each run's workers
//    share only the immutable good-machine trace and compiled netlist;
//    all per-batch scratch is worker-owned and merged by batch index.
//  - Detections are a pure function of (circuit, faults, sequence,
//    drop_detected/cone_restricted/sort_faults): bit-identical at any
//    num_threads AND any lane width, and — by construction, see
//    docs/SWEEP.md — at any sweep mode.  frames_evaluated and
//    gate_evals are additionally invariant across thread counts at a
//    fixed lane width and sweep mode (wider lanes mean fewer, heavier
//    evaluations; sweep=on means fewer faults and smaller cones).
//    Tier-1 tests and the bench_faultsim_perf exit code enforce this.
//  - Instrumentation (faultsim.* metrics, faultsim.* trace spans; see
//    docs/METRICS.md) is observational only and never alters results.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analyze/sweep.h"
#include "fault/fault.h"
#include "faultsim/serial.h"
#include "sim/simulator.h"

namespace retest::faultsim {

/// Knobs for the parallel fault simulator.
struct ProofsOptions {
  /// Stop simulating a fault group once all its faults are detected.
  bool drop_detected = true;
  /// Evaluate only the union of the batch's fault cones per frame,
  /// seeding non-cone values from the good-machine trace.
  bool cone_restricted = true;
  /// Order faults by topological site position before batching so that
  /// faults sharing a word share cones.
  bool sort_faults = true;
  /// Worker threads for independent fault batches.  <= 0 means
  /// core::ThreadPool::DefaultThreadCount() (the REPRO_THREADS env var
  /// when set, else hardware concurrency).
  int num_threads = 0;
  /// Machine words per lane group: 1 (64 faults/pass), 4 (256) or
  /// 8 (512).  Any other value (0 = default) resolves via
  /// sim::ResolveLaneWords — the REPRO_SIMD env var / CMake option,
  /// with `auto` picking the widest kernel the CPU runs natively.
  /// Width never changes detections, only batching and work counters.
  int lane_words = 0;
  /// Structural sweep (analyze/sweep.h).  nullopt defers to the
  /// REPRO_SWEEP env var (default off).  `on` computes the sweep once
  /// per run and uses it for the three transformations that are sound
  /// for faulty machines — static fault resolution (dead-site and
  /// const-redundant faults proven undetected without simulation), a
  /// good-machine trace simulated on the reduced circuit, and dead-node
  /// pruning of the compiled image — never for merged faulty
  /// evaluation, so detections stay bit-identical to `off` while
  /// frames_evaluated / gate_evals may shrink.  `report` analyzes and
  /// records sweep.* metrics, then behaves exactly like `off`.
  std::optional<analyze::SweepMode> sweep;
};

/// Aggregate result of a fault-simulation run.
struct ProofsResult {
  /// One entry per fault, in input order (independent of sorting,
  /// batching, thread count and lane width).
  std::vector<Detection> detections;
  /// Total circuit-frame evaluations performed (deterministic work
  /// measure; each frame covers `lanes` machines).
  long frames_evaluated = 0;
  /// Total node evaluations across all frames (deterministic work
  /// measure; cone restriction shrinks this, threading does not; each
  /// evaluation covers `lanes` machines).
  long gate_evals = 0;
  /// Threads the run actually used.
  int threads_used = 1;
  /// Faulty machines simulated per pass (64 * lane words).
  int lanes = 64;

  int num_detected() const {
    int count = 0;
    for (const Detection& d : detections) count += d.detected ? 1 : 0;
    return count;
  }
};

/// Fault simulates `sequence` over `faults` (64*W per pass).
ProofsResult SimulateProofs(const netlist::Circuit& circuit,
                            std::span<const fault::Fault> faults,
                            const sim::InputSequence& sequence,
                            const ProofsOptions& options = {});

}  // namespace retest::faultsim
