// Multi-level structuring of two-level covers (the SIS-script
// stand-ins).
//
//  - kDelay ("script.delay"): no sharing beyond identical products;
//    wide ANDs/ORs become balanced trees of 2-input gates, minimizing
//    logic depth.
//  - kRugged ("script.rugged"): greedy common-divisor (literal-pair)
//    extraction shared across all functions, then left-deep chains;
//    smaller but deeper logic with more internal fanout.
//
// The two styles yield the different area/delay trade-offs that make
// the paper's original-vs-retimed comparisons interesting; nothing in
// the experiments depends on matching SIS gate-for-gate.
#pragma once

#include <string>
#include <vector>

#include "netlist/circuit.h"
#include "synth/cover.h"

namespace retest::synth {

/// Which SIS-style structuring script to emulate.
enum class ScriptStyle {
  kDelay,   ///< .sd
  kRugged,  ///< .sr
};

/// Short suffix used in circuit names ("sd", "sr").
const char* ToSuffix(ScriptStyle style);

/// Emits multi-level logic computing every cover into `circuit`.
/// `vars[i]` is the net carrying variable i (covers index variables by
/// bit position).  Returns one net per cover (functions may share a
/// net).  `prefix` namespaces the generated gate names.
std::vector<netlist::NodeId> EmitCovers(
    netlist::Circuit& circuit, const std::vector<Cover>& covers,
    const std::vector<netlist::NodeId>& vars, ScriptStyle style,
    const std::string& prefix);

/// Emits 2:1-mux trees (as AND/OR/NOT gates) selecting among
/// `leaves[f]` (one vector of 2^k nets per function) by the k `selects`
/// nets; select bit 0 switches at the leaf level.  Gates are
/// structurally hashed so identical subtrees are shared across
/// functions.  Returns one root net per function.  This is the Shannon
/// state-decomposition step of the synthesis flow: it keeps the state
/// variables near the function roots, which is what leaves the pure-PI
/// leaf cones retimable.
std::vector<netlist::NodeId> EmitMuxTrees(
    netlist::Circuit& circuit,
    const std::vector<std::vector<netlist::NodeId>>& leaves,
    const std::vector<netlist::NodeId>& selects, const std::string& prefix);

}  // namespace retest::synth
