#include "synth/synthesize.h"

#include <stdexcept>

#include "netlist/check.h"
#include "synth/cover.h"

namespace retest::synth {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;

std::string CircuitName(const fsm::Fsm& fsm, const SynthesisOptions& options) {
  return fsm.name + "." + ToSuffix(options.encoding) + "." +
         ToSuffix(options.script);
}

namespace {

/// The primary-input part of a transition's input cube, as a Cover
/// cube over variables 0..num_inputs-1.
Cube PiCube(const fsm::Fsm& fsm, const fsm::Transition& t) {
  Cube cube;
  for (int i = 0; i < fsm.num_inputs; ++i) {
    const char c = t.input[static_cast<size_t>(i)];
    if (c == '-') continue;
    cube.care |= 1ull << i;
    if (c == '1') cube.value |= 1ull << i;
  }
  return cube;
}

/// Input cubes of state `s` that match no transition (the "hold"
/// complement), enumerated as minterms.  Only needed for incompletely
/// specified machines.
std::vector<Cube> UnspecifiedMinterms(const fsm::Fsm& fsm, int s) {
  if (fsm.num_inputs > 20) {
    throw std::invalid_argument(
        "Synthesize: incompletely specified FSM with wide inputs");
  }
  std::vector<Cube> minterms;
  for (long long a = 0; a < (1ll << fsm.num_inputs); ++a) {
    bool specified = false;
    for (const fsm::Transition& t : fsm.transitions) {
      if (t.from != s) continue;
      if (PiCube(fsm, t).Matches(static_cast<std::uint64_t>(a))) {
        specified = true;
        break;
      }
    }
    if (specified) continue;
    Cube cube;
    for (int i = 0; i < fsm.num_inputs; ++i) {
      cube.care |= 1ull << i;
      if ((a >> i) & 1) cube.value |= 1ull << i;
    }
    minterms.push_back(cube);
  }
  return minterms;
}

}  // namespace

Circuit Synthesize(const fsm::Fsm& fsm, const SynthesisOptions& options) {
  fsm::Validate(fsm);
  const Encoding encoding = EncodeStates(fsm, options.encoding);
  const int bits = encoding.bits;
  if (fsm.num_inputs > 64) {
    throw std::invalid_argument("Synthesize: more than 64 primary inputs");
  }
  if (options.explicit_reset && fsm.reset_state < 0) {
    throw std::invalid_argument("Synthesize: FSM has no reset state");
  }
  const bool complete = fsm::IsCompletelySpecified(fsm);

  // Shannon decomposition over the state variables: each function
  // (primary output or next-state bit) is a 2^bits-leaf mux tree whose
  // leaf f|state=s is a two-level cover over the primary inputs only.
  // This keeps the state registers near the function roots and leaves
  // the leaf cones combinationally pure -- the structure that makes
  // min-period retiming productive (see DESIGN.md).
  const int num_functions = fsm.num_outputs + bits;
  const int num_codes = 1 << bits;
  auto state_of_code = [&](int code) {
    for (int s = 0; s < fsm.num_states(); ++s) {
      if (encoding.code_of[static_cast<size_t>(s)] ==
          static_cast<std::uint32_t>(code)) {
        return s;
      }
    }
    return -1;  // unused code: don't care, synthesize as constant 0
  };

  // leaf_covers[f * num_codes + code]
  std::vector<Cover> leaf_covers(
      static_cast<size_t>(num_functions * num_codes));
  for (int code = 0; code < num_codes; ++code) {
    const int s = state_of_code(code);
    if (s < 0) continue;
    for (const fsm::Transition& t : fsm.transitions) {
      if (t.from != s) continue;
      const Cube cube = PiCube(fsm, t);
      for (int o = 0; o < fsm.num_outputs; ++o) {
        if (t.output[static_cast<size_t>(o)] == '1') {
          leaf_covers[static_cast<size_t>(o * num_codes + code)].push_back(
              cube);
        }
      }
      const std::uint32_t to_code =
          encoding.code_of[static_cast<size_t>(t.to)];
      for (int b = 0; b < bits; ++b) {
        if ((to_code >> b) & 1) {
          leaf_covers[static_cast<size_t>((fsm.num_outputs + b) * num_codes +
                                          code)]
              .push_back(cube);
        }
      }
    }
    if (!complete) {
      // Unspecified inputs hold the state (output 0).
      const auto hold = UnspecifiedMinterms(fsm, s);
      const std::uint32_t code_bits = static_cast<std::uint32_t>(code);
      for (int b = 0; b < bits; ++b) {
        if ((code_bits >> b) & 1) {
          auto& cover = leaf_covers[static_cast<size_t>(
              (fsm.num_outputs + b) * num_codes + code)];
          cover.insert(cover.end(), hold.begin(), hold.end());
        }
      }
    }
  }
  for (Cover& cover : leaf_covers) MinimizeCover(cover);

  // Netlist skeleton: PIs, state DFFs (inputs wired at the end).
  Circuit circuit(CircuitName(fsm, options));
  std::vector<NodeId> pi_vars(static_cast<size_t>(fsm.num_inputs));
  for (int i = 0; i < fsm.num_inputs; ++i) {
    pi_vars[static_cast<size_t>(i)] =
        circuit.Add(NodeKind::kInput, "in" + std::to_string(i));
  }
  NodeId reset = netlist::kNoNode;
  if (options.explicit_reset) {
    reset = circuit.Add(NodeKind::kInput, "rst");
  }
  std::vector<NodeId> dffs(static_cast<size_t>(bits));
  std::vector<NodeId> state_vars(static_cast<size_t>(bits));
  for (int b = 0; b < bits; ++b) {
    dffs[static_cast<size_t>(b)] =
        circuit.Add(NodeKind::kDff, "q" + std::to_string(b));
    state_vars[static_cast<size_t>(b)] = dffs[static_cast<size_t>(b)];
  }

  // Leaf logic (shared across all functions), then the mux trees.
  const std::vector<NodeId> leaf_nets =
      EmitCovers(circuit, leaf_covers, pi_vars, options.script, "s_");
  std::vector<std::vector<NodeId>> leaves(
      static_cast<size_t>(num_functions),
      std::vector<NodeId>(static_cast<size_t>(num_codes)));
  for (int f = 0; f < num_functions; ++f) {
    for (int code = 0; code < num_codes; ++code) {
      leaves[static_cast<size_t>(f)][static_cast<size_t>(code)] =
          leaf_nets[static_cast<size_t>(f * num_codes + code)];
    }
  }
  const std::vector<NodeId> nets =
      EmitMuxTrees(circuit, leaves, state_vars, "s_");

  // Primary outputs.
  for (int o = 0; o < fsm.num_outputs; ++o) {
    circuit.Add(NodeKind::kOutput, "out" + std::to_string(o),
                {nets[static_cast<size_t>(o)]});
  }

  // Next-state wiring, with the optional reset override
  //   next = rst ? reset_code : f   (per bit).
  NodeId reset_n = netlist::kNoNode;
  if (options.explicit_reset) {
    reset_n = circuit.Add(NodeKind::kNot, "rst_n", {reset});
  }
  const std::uint32_t reset_code =
      fsm.reset_state >= 0
          ? encoding.code_of[static_cast<size_t>(fsm.reset_state)]
          : 0;
  for (int b = 0; b < bits; ++b) {
    NodeId next = nets[static_cast<size_t>(fsm.num_outputs + b)];
    if (options.explicit_reset) {
      const NodeId gated = circuit.Add(
          NodeKind::kAnd, circuit.FreshName("ns" + std::to_string(b)),
          {reset_n, next});
      if ((reset_code >> b) & 1) {
        next = circuit.Add(NodeKind::kOr,
                           circuit.FreshName("nsr" + std::to_string(b)),
                           {gated, reset});
      } else {
        next = gated;
      }
    }
    circuit.AddPin(dffs[static_cast<size_t>(b)], next);
  }

  netlist::CheckOrThrow(circuit);
  return circuit;
}

}  // namespace retest::synth
