// State encoding (the jedi stand-in).
//
// Assigns minimal-width binary codes to FSM states with a greedy
// affinity-embedding heuristic in three flavours matching the paper's
// synthesis-option fields: output dominant (.jo), input dominant (.ji)
// and combined (.jc).  States with high affinity receive codes at small
// Hamming distance, which is what shapes the synthesized logic -- the
// experiments only rely on the three flavours producing structurally
// different circuits.
#pragma once

#include <cstdint>
#include <vector>

#include "fsm/fsm.h"

namespace retest::synth {

/// Which pairwise state affinity drives the embedding.
enum class EncodingStyle {
  kOutputDominant,  ///< .jo: states with similar output behaviour.
  kInputDominant,   ///< .ji: states fanning out of common predecessors.
  kCombined,        ///< .jc: sum of both affinities.
};

/// Short suffix used in circuit names ("jo", "ji", "jc").
const char* ToSuffix(EncodingStyle style);

/// A state assignment.
struct Encoding {
  int bits = 0;  ///< Code width: ceil(log2(num_states)).
  /// code_of[s] = binary code of state s (bit 0 = state variable 0).
  std::vector<std::uint32_t> code_of;
};

/// Encodes the FSM's states.  Deterministic.
Encoding EncodeStates(const fsm::Fsm& fsm, EncodingStyle style);

}  // namespace retest::synth
