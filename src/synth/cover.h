// Two-level (sum-of-products) covers over up to 64 variables, with a
// light-weight minimizer (single-cube containment + adjacency merging,
// iterated to a fixpoint).  This is the espresso stand-in feeding the
// multi-level structuring scripts.
#pragma once

#include <cstdint>
#include <vector>

namespace retest::synth {

/// A product term: variable i is a literal iff bit i of `care` is set,
/// with polarity given by bit i of `value` (bits outside `care` are 0).
struct Cube {
  std::uint64_t care = 0;
  std::uint64_t value = 0;

  friend bool operator==(const Cube&, const Cube&) = default;

  /// Number of literals.
  int size() const;
  /// True when this cube covers every minterm of `other`.
  bool Contains(const Cube& other) const;
  /// True when the cubes share at least one minterm.
  bool Intersects(const Cube& other) const;
  /// True when `assignment` (a full minterm) satisfies the cube.
  bool Matches(std::uint64_t assignment) const;
};

/// An ON-set cover: OR of cubes.  Empty cover = constant 0; a cube with
/// no literals = constant 1.
using Cover = std::vector<Cube>;

/// Evaluates the cover on a full variable assignment.
bool Evaluate(const Cover& cover, std::uint64_t assignment);

/// Attempts the adjacency (consensus-merge) rule: if the cubes differ
/// in exactly one literal's polarity and agree elsewhere, writes the
/// merged cube and returns true.
bool TryMergeAdjacent(const Cube& a, const Cube& b, Cube& merged);

/// Minimizes in place: removes contained cubes and merges adjacent
/// pairs until no rule applies.  Preserves the ON-set exactly (no
/// off-set knowledge is used, so the result never grows the function).
void MinimizeCover(Cover& cover);

/// Builds a cube from a string like "1-0" (variable 0 is the first
/// character).  Throws on bad characters or length > 64.
Cube CubeFromString(const char* text);

}  // namespace retest::synth
