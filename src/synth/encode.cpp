#include "synth/encode.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace retest::synth {
namespace {

using fsm::Fsm;
using fsm::Transition;

/// Pairwise affinity matrix (symmetric, zero diagonal).
using Affinity = std::vector<std::vector<double>>;

Affinity OutputAffinity(const Fsm& fsm) {
  const size_t n = static_cast<size_t>(fsm.num_states());
  // Output signature: per state, the fraction of its transitions
  // asserting each output.
  std::vector<std::vector<double>> signature(
      n, std::vector<double>(static_cast<size_t>(fsm.num_outputs), 0.0));
  std::vector<int> cubes(n, 0);
  for (const Transition& t : fsm.transitions) {
    ++cubes[static_cast<size_t>(t.from)];
    for (int o = 0; o < fsm.num_outputs; ++o) {
      if (t.output[static_cast<size_t>(o)] == '1') {
        signature[static_cast<size_t>(t.from)][static_cast<size_t>(o)] += 1.0;
      }
    }
  }
  for (size_t s = 0; s < n; ++s) {
    for (double& v : signature[s]) {
      if (cubes[s] > 0) v /= cubes[s];
    }
  }
  Affinity affinity(n, std::vector<double>(n, 0.0));
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      double similarity = 0.0;
      for (int o = 0; o < fsm.num_outputs; ++o) {
        similarity += 1.0 - std::abs(signature[a][static_cast<size_t>(o)] -
                                     signature[b][static_cast<size_t>(o)]);
      }
      affinity[a][b] = affinity[b][a] = similarity;
    }
  }
  return affinity;
}

Affinity InputAffinity(const Fsm& fsm) {
  const size_t n = static_cast<size_t>(fsm.num_states());
  Affinity affinity(n, std::vector<double>(n, 0.0));
  // Successors of the same state attract each other (they are encoded
  // close so that the next-state logic shares cubes).
  for (size_t i = 0; i < fsm.transitions.size(); ++i) {
    for (size_t j = i + 1; j < fsm.transitions.size(); ++j) {
      const Transition& a = fsm.transitions[i];
      const Transition& b = fsm.transitions[j];
      if (a.from != b.from || a.to == b.to) continue;
      affinity[static_cast<size_t>(a.to)][static_cast<size_t>(b.to)] += 1.0;
      affinity[static_cast<size_t>(b.to)][static_cast<size_t>(a.to)] += 1.0;
    }
  }
  return affinity;
}

}  // namespace

const char* ToSuffix(EncodingStyle style) {
  switch (style) {
    case EncodingStyle::kOutputDominant: return "jo";
    case EncodingStyle::kInputDominant: return "ji";
    case EncodingStyle::kCombined: return "jc";
  }
  return "?";
}

Encoding EncodeStates(const fsm::Fsm& fsm, EncodingStyle style) {
  const int n = fsm.num_states();
  if (n <= 0) throw std::invalid_argument("EncodeStates: empty FSM");

  Affinity affinity;
  switch (style) {
    case EncodingStyle::kOutputDominant:
      affinity = OutputAffinity(fsm);
      break;
    case EncodingStyle::kInputDominant:
      affinity = InputAffinity(fsm);
      break;
    case EncodingStyle::kCombined: {
      affinity = OutputAffinity(fsm);
      const Affinity input = InputAffinity(fsm);
      for (size_t a = 0; a < affinity.size(); ++a) {
        for (size_t b = 0; b < affinity.size(); ++b) {
          affinity[a][b] += input[a][b];
        }
      }
      break;
    }
  }

  Encoding encoding;
  encoding.bits = n <= 1 ? 1 : std::bit_width(static_cast<unsigned>(n - 1));
  encoding.code_of.assign(static_cast<size_t>(n), 0);
  const int num_codes = 1 << encoding.bits;

  std::vector<bool> placed(static_cast<size_t>(n), false);
  std::vector<bool> code_used(static_cast<size_t>(num_codes), false);

  // The reset state (or state 0) anchors the embedding at code 0.
  int first = fsm.reset_state >= 0 ? fsm.reset_state : 0;
  encoding.code_of[static_cast<size_t>(first)] = 0;
  placed[static_cast<size_t>(first)] = true;
  code_used[0] = true;

  for (int step = 1; step < n; ++step) {
    // Unplaced state with the strongest pull toward placed states.
    int best_state = -1;
    double best_pull = -1.0;
    for (int s = 0; s < n; ++s) {
      if (placed[static_cast<size_t>(s)]) continue;
      double pull = 0.0;
      for (int p = 0; p < n; ++p) {
        if (placed[static_cast<size_t>(p)]) {
          pull += affinity[static_cast<size_t>(s)][static_cast<size_t>(p)];
        }
      }
      if (pull > best_pull) {
        best_pull = pull;
        best_state = s;
      }
    }
    // Free code minimizing affinity-weighted Hamming distance.
    int best_code = -1;
    double best_cost = 0.0;
    for (int code = 0; code < num_codes; ++code) {
      if (code_used[static_cast<size_t>(code)]) continue;
      double cost = 0.0;
      for (int p = 0; p < n; ++p) {
        if (!placed[static_cast<size_t>(p)]) continue;
        const int distance = std::popcount(
            static_cast<unsigned>(code) ^ encoding.code_of[static_cast<size_t>(p)]);
        cost += affinity[static_cast<size_t>(best_state)][static_cast<size_t>(p)] *
                distance;
      }
      if (best_code < 0 || cost < best_cost) {
        best_cost = cost;
        best_code = code;
      }
    }
    encoding.code_of[static_cast<size_t>(best_state)] =
        static_cast<std::uint32_t>(best_code);
    placed[static_cast<size_t>(best_state)] = true;
    code_used[static_cast<size_t>(best_code)] = true;
  }
  return encoding;
}

}  // namespace retest::synth
