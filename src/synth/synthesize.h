// FSM -> gate-level sequential circuit (the SIS flow stand-in).
#pragma once

#include <string>

#include "fsm/fsm.h"
#include "netlist/circuit.h"
#include "synth/encode.h"
#include "synth/scripts.h"

namespace retest::synth {

/// Synthesis options mirroring the paper's circuit-name fields
/// (e.g. "s510.jc.sd" = jedi-combined encoding, script.delay).
struct SynthesisOptions {
  EncodingStyle encoding = EncodingStyle::kCombined;
  ScriptStyle script = ScriptStyle::kDelay;
  /// Adds an explicit reset primary input that forces the state
  /// registers to the FSM's reset state code (used by the paper's
  /// dk16/pma/s510/scf versions).
  bool explicit_reset = false;
};

/// The canonical circuit name "fsm.jX.sY" for the given options.
std::string CircuitName(const fsm::Fsm& fsm, const SynthesisOptions& options);

/// Synthesizes the FSM: encodes states minimally (so #DFF =
/// ceil(log2 |S|)), builds minimized two-level covers for every primary
/// output and next-state bit, then structures them per the script
/// style.  Unspecified (state, input) pairs hold the state and output
/// 0.  The result passes netlist::Check.
netlist::Circuit Synthesize(const fsm::Fsm& fsm,
                            const SynthesisOptions& options);

}  // namespace retest::synth
