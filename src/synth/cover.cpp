#include "synth/cover.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace retest::synth {

int Cube::size() const { return std::popcount(care); }

bool Cube::Contains(const Cube& other) const {
  // Every literal of this cube must be a literal of `other` with the
  // same polarity.
  if ((care & other.care) != care) return false;
  return (value & care) == (other.value & care);
}

bool Cube::Intersects(const Cube& other) const {
  const std::uint64_t common = care & other.care;
  return (value & common) == (other.value & common);
}

bool Cube::Matches(std::uint64_t assignment) const {
  return (assignment & care) == value;
}

bool Evaluate(const Cover& cover, std::uint64_t assignment) {
  for (const Cube& cube : cover) {
    if (cube.Matches(assignment)) return true;
  }
  return false;
}

bool TryMergeAdjacent(const Cube& a, const Cube& b, Cube& merged) {
  if (a.care != b.care) return false;
  const std::uint64_t diff = a.value ^ b.value;
  if (std::popcount(diff) != 1) return false;
  merged.care = a.care & ~diff;
  merged.value = a.value & ~diff;
  return true;
}

void MinimizeCover(Cover& cover) {
  bool changed = true;
  while (changed) {
    changed = false;
    // Adjacency merging.
    for (size_t i = 0; i < cover.size() && !changed; ++i) {
      for (size_t j = i + 1; j < cover.size(); ++j) {
        Cube merged;
        if (TryMergeAdjacent(cover[i], cover[j], merged)) {
          cover[i] = merged;
          cover.erase(cover.begin() + static_cast<long>(j));
          changed = true;
          break;
        }
      }
    }
    // Containment removal.
    for (size_t i = 0; i < cover.size(); ++i) {
      for (size_t j = 0; j < cover.size();) {
        if (i != j && cover[i].Contains(cover[j])) {
          cover.erase(cover.begin() + static_cast<long>(j));
          if (j < i) --i;
          changed = true;
        } else {
          ++j;
        }
      }
    }
  }
}

Cube CubeFromString(const char* text) {
  const size_t n = std::strlen(text);
  if (n > 64) throw std::invalid_argument("CubeFromString: too many variables");
  Cube cube;
  for (size_t i = 0; i < n; ++i) {
    switch (text[i]) {
      case '0':
        cube.care |= 1ull << i;
        break;
      case '1':
        cube.care |= 1ull << i;
        cube.value |= 1ull << i;
        break;
      case '-':
        break;
      default:
        throw std::invalid_argument("CubeFromString: bad character");
    }
  }
  return cube;
}

}  // namespace retest::synth
