#include "synth/scripts.h"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace retest::synth {
namespace {

using netlist::Circuit;
using netlist::NodeId;
using netlist::NodeKind;

class Emitter {
 public:
  Emitter(Circuit& circuit, const std::vector<NodeId>& vars,
          ScriptStyle style, const std::string& prefix)
      : circuit_(circuit), vars_(vars), style_(style), prefix_(prefix) {}

  std::vector<NodeId> Emit(const std::vector<Cover>& covers) {
    // Products of every cover, as sorted literal-net lists, with
    // identical products shared globally.
    std::vector<std::vector<std::vector<NodeId>>> products(covers.size());
    for (size_t f = 0; f < covers.size(); ++f) {
      for (const Cube& cube : covers[f]) {
        products[f].push_back(LiteralNets(cube));
      }
    }
    if (style_ == ScriptStyle::kRugged) ExtractDivisors(products);

    std::vector<NodeId> nets(covers.size());
    for (size_t f = 0; f < covers.size(); ++f) {
      nets[f] = EmitFunction(products[f]);
    }
    return nets;
  }

 private:
  NodeId Const0() {
    if (const0_ == netlist::kNoNode) {
      const0_ = circuit_.Add(NodeKind::kConst0, circuit_.FreshName(prefix_ + "zero"));
    }
    return const0_;
  }
  NodeId Const1() {
    if (const1_ == netlist::kNoNode) {
      const1_ = circuit_.Add(NodeKind::kConst1, circuit_.FreshName(prefix_ + "one"));
    }
    return const1_;
  }

  NodeId Literal(int var, bool positive) {
    const NodeId net = vars_[static_cast<size_t>(var)];
    if (positive) return net;
    auto it = inverters_.find(net);
    if (it != inverters_.end()) return it->second;
    const NodeId inv = circuit_.Add(
        NodeKind::kNot, circuit_.FreshName(prefix_ + "n" + std::to_string(var)),
        {net});
    inverters_.emplace(net, inv);
    return inv;
  }

  std::vector<NodeId> LiteralNets(const Cube& cube) {
    std::vector<NodeId> nets;
    for (int var = 0; var < 64; ++var) {
      if (cube.care & (1ull << var)) {
        nets.push_back(Literal(var, (cube.value >> var) & 1));
      }
    }
    std::sort(nets.begin(), nets.end());
    return nets;
  }

  /// Creates (or reuses) a 2-input gate over the ordered pair (a, b).
  NodeId Gate2(NodeKind kind, NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    const auto key = std::tuple(kind, a, b);
    auto it = gate_cache_.find(key);
    if (it != gate_cache_.end()) return it->second;
    const NodeId gate =
        circuit_.Add(kind, circuit_.FreshName(prefix_ + "g"), {a, b});
    gate_cache_.emplace(key, gate);
    return gate;
  }

  /// Reduces `nets` to one net with 2-input gates of `kind`.
  NodeId Reduce(NodeKind kind, std::vector<NodeId> nets) {
    if (nets.empty()) {
      throw std::logic_error("Reduce: empty operand list");
    }
    if (style_ == ScriptStyle::kDelay) {
      // Balanced tree: combine pairs level by level.
      while (nets.size() > 1) {
        std::vector<NodeId> next;
        for (size_t i = 0; i + 1 < nets.size(); i += 2) {
          next.push_back(Gate2(kind, nets[i], nets[i + 1]));
        }
        if (nets.size() % 2 == 1) next.push_back(nets.back());
        nets = std::move(next);
      }
      return nets.front();
    }
    // Rugged: left-deep chain.
    NodeId acc = nets.front();
    for (size_t i = 1; i < nets.size(); ++i) {
      acc = Gate2(kind, acc, nets[i]);
    }
    return acc;
  }

  /// Greedy shared literal-pair (divisor) extraction across all
  /// products of all functions.
  void ExtractDivisors(std::vector<std::vector<std::vector<NodeId>>>& products) {
    for (int round = 0; round < 1000; ++round) {
      std::map<std::pair<NodeId, NodeId>, int> pair_count;
      for (const auto& function : products) {
        for (const auto& product : function) {
          for (size_t i = 0; i < product.size(); ++i) {
            for (size_t j = i + 1; j < product.size(); ++j) {
              ++pair_count[{product[i], product[j]}];
            }
          }
        }
      }
      std::pair<NodeId, NodeId> best{netlist::kNoNode, netlist::kNoNode};
      int best_count = 1;
      for (const auto& [pair, count] : pair_count) {
        if (count > best_count) {
          best_count = count;
          best = pair;
        }
      }
      if (best_count < 2) break;
      const NodeId divisor = Gate2(NodeKind::kAnd, best.first, best.second);
      for (auto& function : products) {
        for (auto& product : function) {
          auto a = std::find(product.begin(), product.end(), best.first);
          auto b = std::find(product.begin(), product.end(), best.second);
          if (a == product.end() || b == product.end()) continue;
          product.erase(b);  // b is at a later/equal position? erase both
          a = std::find(product.begin(), product.end(), best.first);
          product.erase(a);
          product.push_back(divisor);
          std::sort(product.begin(), product.end());
        }
      }
    }
  }

  NodeId EmitFunction(const std::vector<std::vector<NodeId>>& function) {
    if (function.empty()) return Const0();
    std::vector<NodeId> product_nets;
    for (const auto& product : function) {
      if (product.empty()) return Const1();  // tautological cube
      product_nets.push_back(product.size() == 1
                                 ? product.front()
                                 : Reduce(NodeKind::kAnd, product));
    }
    std::sort(product_nets.begin(), product_nets.end());
    product_nets.erase(std::unique(product_nets.begin(), product_nets.end()),
                       product_nets.end());
    return product_nets.size() == 1 ? product_nets.front()
                                    : Reduce(NodeKind::kOr, product_nets);
  }

  Circuit& circuit_;
  const std::vector<NodeId>& vars_;
  ScriptStyle style_;
  std::string prefix_;
  NodeId const0_ = netlist::kNoNode;
  NodeId const1_ = netlist::kNoNode;
  std::map<NodeId, NodeId> inverters_;
  std::map<std::tuple<NodeKind, NodeId, NodeId>, NodeId> gate_cache_;
};

}  // namespace

const char* ToSuffix(ScriptStyle style) {
  switch (style) {
    case ScriptStyle::kDelay: return "sd";
    case ScriptStyle::kRugged: return "sr";
  }
  return "?";
}

std::vector<NodeId> EmitCovers(Circuit& circuit,
                               const std::vector<Cover>& covers,
                               const std::vector<NodeId>& vars,
                               ScriptStyle style, const std::string& prefix) {
  Emitter emitter(circuit, vars, style, prefix);
  return emitter.Emit(covers);
}

std::vector<NodeId> EmitMuxTrees(
    Circuit& circuit, const std::vector<std::vector<NodeId>>& leaves,
    const std::vector<NodeId>& selects, const std::string& prefix) {
  const size_t k = selects.size();
  // Shared structural caches.
  std::map<NodeId, NodeId> inverter;
  std::map<std::tuple<NodeKind, NodeId, NodeId>, NodeId> gate_cache;
  auto gate2 = [&](NodeKind kind, NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    const auto key = std::tuple(kind, a, b);
    auto it = gate_cache.find(key);
    if (it != gate_cache.end()) return it->second;
    const NodeId gate =
        circuit.Add(kind, circuit.FreshName(prefix + "m"), {a, b});
    gate_cache.emplace(key, gate);
    return gate;
  };
  auto invert = [&](NodeId net) {
    auto it = inverter.find(net);
    if (it != inverter.end()) return it->second;
    const NodeId inv =
        circuit.Add(NodeKind::kNot, circuit.FreshName(prefix + "mn"), {net});
    inverter.emplace(net, inv);
    return inv;
  };
  auto mux = [&](NodeId sel, NodeId when1, NodeId when0) {
    if (when1 == when0) return when1;
    const NodeId a = gate2(NodeKind::kAnd, sel, when1);
    const NodeId b = gate2(NodeKind::kAnd, invert(sel), when0);
    return gate2(NodeKind::kOr, a, b);
  };

  std::vector<NodeId> roots;
  roots.reserve(leaves.size());
  for (const auto& function_leaves : leaves) {
    if (function_leaves.size() != (size_t{1} << k)) {
      throw std::invalid_argument("EmitMuxTrees: leaves size != 2^k");
    }
    std::vector<NodeId> level(function_leaves);
    for (size_t bit = 0; bit < k; ++bit) {
      std::vector<NodeId> next(level.size() / 2);
      for (size_t i = 0; i < next.size(); ++i) {
        next[i] = mux(selects[bit], level[2 * i + 1], level[2 * i]);
      }
      level = std::move(next);
    }
    roots.push_back(level.front());
  }
  return roots;
}

}  // namespace retest::synth
